//! Bit-sliced 64-lane trial engine: word-parallel multi-trial simulation.
//!
//! The scalar engine ([`crate::RadioSimulator::run_in`]) resolves one trial
//! at a time, vertex by vertex. Radio round resolution, however, is pure
//! boolean algebra over informed/transmitting/collision bits — so this
//! module packs up to 64 **independent trials** into the bit-lanes of a
//! `u64` and resolves them word-parallel: lane `l` of every word belongs to
//! trial `l`, and one AND/OR/ANDNOT pass over a word advances all 64 trials
//! at once.
//!
//! # Lane semantics
//!
//! * State is **lane-major**: [`LaneWorkspace`] holds one `u64` per vertex
//!   for each of the informed / newly-informed / transmitter / collision
//!   masks; bit `l` of word `v` is trial `l`'s bit for vertex `v`.
//! * Each lane runs under its own RNG stream, seeded from the caller's
//!   per-lane seed slice (batch drivers derive these with
//!   `derive_seed(base_seed, trial)`, the same convention as the scalar
//!   [`crate::trials::map_trials`]) — so lane `k` of a bit-sliced run
//!   reproduces the scalar `run_in(seed_k)` **bit for bit**: same completion
//!   round, same per-vertex first-informed rounds, same per-round counts.
//! * Lanes retire independently: when a trial completes (and the simulator
//!   is configured to stop on completion) its bit leaves the `live` mask,
//!   its trajectory stops growing, and its RNG stream stops being consumed —
//!   exactly as if its scalar run had returned.
//!
//! # Collision kernel
//!
//! Per round, for each transmitting vertex `v` with lane mask `t`, every
//! neighbor `u` accumulates `twice[u] |= once[u] & t; once[u] |= t`. A
//! vertex then receives in the lanes `once & !twice & !transmit` — heard
//! exactly one transmitter and was not itself transmitting, the unique
//! neighborhood `Γ¹(T)` evaluated in 64 trials per word operation.
//!
//! # Protocols
//!
//! Randomized protocols implement [`LaneProtocol`] natively:
//! [`LaneDecay`] ports the decay protocol by transposing 64×64 bit tiles of
//! the eligibility matrix into per-lane vertex masks and drawing each lane's
//! Bernoulli decisions in bulk from its own stream
//! (`fill_masked_decision_bits` on the workspace RNG — stream-identical to
//! per-vertex `gen_bool`). Deterministic protocols ride along for free:
//! [`LaneMirror`] runs the scalar protocol once per round on a mirrored
//! scalar state and broadcasts the transmitter mask to every live lane.

use crate::protocols::BroadcastProtocol;
use crate::simulator::{RadioSimulator, RoundView, TrialOutcome};
use std::cell::RefCell;
use wx_graph::random::{rng_from_seed, WxRng};
use wx_graph::{Graph, GraphView, NeighborhoodScratch, Vertex, VertexSet};

/// Maximum number of trials per bit-sliced batch (the lanes of a `u64`).
pub const MAX_LANES: usize = 64;

/// Read-only per-round view handed to [`LaneProtocol`] implementations.
#[derive(Debug)]
pub struct LaneView<'a, G: GraphView + ?Sized = Graph> {
    /// The underlying network.
    pub graph: &'a G,
    /// The current round number (the first round is 0).
    pub round: usize,
    /// The broadcast source.
    pub source: Vertex,
    /// Mask of lanes still running; retired lanes must neither transmit nor
    /// consume their RNG streams.
    pub live: u64,
    /// Lane-major informed state: bit `l` of `informed[v]` is set iff vertex
    /// `v` is informed in trial `l`.
    pub informed: &'a [u64],
}

/// A broadcast protocol expressed over bit-lanes: one transmitter mask per
/// vertex word instead of one transmitter set per trial.
pub trait LaneProtocol<G: GraphView + ?Sized = Graph> {
    /// Short name for reports (matches the scalar protocol's name).
    fn name(&self) -> &'static str;

    /// Called once before a batch starts. `seeds[l]` seeds lane `l`'s RNG
    /// stream; the batch width is `seeds.len()`.
    fn reset(&mut self, graph: &G, source: Vertex, seeds: &[u64]);

    /// Chooses the transmitters for this round, overwriting `transmit`
    /// (one word per vertex). On return, bit `(v, l)` may be set only if
    /// vertex `v` is informed in lane `l` and lane `l` is live; **every**
    /// word of `transmit` must be consistent with this round (stale bits
    /// from the previous round must be cleared by the implementation).
    fn fill_transmitters(&mut self, view: &LaneView<'_, G>, transmit: &mut [u64]);
}

impl<G: GraphView + ?Sized, P: LaneProtocol<G> + ?Sized> LaneProtocol<G> for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn reset(&mut self, graph: &G, source: Vertex, seeds: &[u64]) {
        (**self).reset(graph, source, seeds);
    }
    fn fill_transmitters(&mut self, view: &LaneView<'_, G>, transmit: &mut [u64]) {
        (**self).fill_transmitters(view, transmit);
    }
}

/// Reusable lane-major state for one bit-sliced batch of up to 64 trials.
///
/// Like [`crate::TrialWorkspace`], a lane workspace is tied to no particular
/// graph — [`run_lanes_in`] grows it on demand, so one workspace serves
/// batch after batch without reallocating. After a run it retains every
/// per-lane trajectory (per-round informed counts, per-vertex first-informed
/// rounds) until the next run overwrites them.
#[derive(Debug)]
pub struct LaneWorkspace {
    /// Number of vertices of the last run's graph.
    n: usize,
    /// Number of lanes (trials) of the last run.
    lanes: usize,
    /// Completion target of the last run (reachable vertices).
    target: usize,
    /// Lane-major informed bits, one word per vertex.
    informed: Vec<u64>,
    /// Lanes in which each vertex was first informed in the previous round.
    newly: Vec<u64>,
    /// Lanes in which each vertex was first informed this round (swapped
    /// with `newly` at the end of each round).
    fresh: Vec<u64>,
    /// This round's transmitter mask, filled by the protocol.
    transmit: Vec<u64>,
    /// Collision accumulator: lanes in which ≥ 1 neighbor transmitted.
    once: Vec<u64>,
    /// Collision accumulator: lanes in which ≥ 2 neighbors transmitted.
    twice: Vec<u64>,
    /// Vertices with a nonzero `once` word this round (targeted clearing).
    touched: Vec<usize>,
    /// Vertices with a nonzero `newly` word.
    newly_list: Vec<usize>,
    /// Vertices with a nonzero `fresh` word.
    fresh_list: Vec<usize>,
    /// `first_informed[v * 64 + l]` = round lane `l` first informed vertex
    /// `v`, or `u32::MAX` if it never did.
    first_informed: Vec<u32>,
    /// Per-lane informed counts.
    informed_count: [usize; MAX_LANES],
    /// Per-lane informed-count trajectories (`[lane][round]`).
    informed_per_round: Vec<Vec<usize>>,
    /// Per-lane completion rounds.
    completed_at: [Option<usize>; MAX_LANES],
}

impl Default for LaneWorkspace {
    fn default() -> Self {
        LaneWorkspace::new(0)
    }
}

impl LaneWorkspace {
    /// Creates a workspace pre-sized for graphs of `n` vertices.
    pub fn new(n: usize) -> Self {
        LaneWorkspace {
            n,
            lanes: 0,
            target: 0,
            informed: vec![0; n],
            newly: vec![0; n],
            fresh: vec![0; n],
            transmit: vec![0; n],
            once: vec![0; n],
            twice: vec![0; n],
            touched: Vec::new(),
            newly_list: Vec::new(),
            fresh_list: Vec::new(),
            first_informed: vec![u32::MAX; n * MAX_LANES],
            informed_count: [0; MAX_LANES],
            informed_per_round: (0..MAX_LANES).map(|_| Vec::new()).collect(),
            completed_at: [None; MAX_LANES],
        }
    }

    fn reset(&mut self, n: usize, source: Vertex, lanes: usize, target: usize) {
        self.n = n;
        self.lanes = lanes;
        self.target = target;
        for buf in [
            &mut self.informed,
            &mut self.newly,
            &mut self.fresh,
            &mut self.transmit,
            &mut self.once,
            &mut self.twice,
        ] {
            buf.resize(n, 0);
            buf[..n].iter_mut().for_each(|w| *w = 0);
        }
        self.first_informed.resize(n * MAX_LANES, u32::MAX);
        self.first_informed[..n * MAX_LANES]
            .iter_mut()
            .for_each(|x| *x = u32::MAX);
        self.touched.clear();
        self.newly_list.clear();
        self.fresh_list.clear();
        let live = live_mask(lanes);
        self.informed[source] = live;
        self.newly[source] = live;
        self.newly_list.push(source);
        for l in 0..MAX_LANES {
            self.informed_count[l] = usize::from(l < lanes);
            self.informed_per_round[l].clear();
            if l < lanes {
                self.first_informed[source * MAX_LANES + l] = 0;
                self.informed_per_round[l].push(1);
            }
            self.completed_at[l] = None;
        }
    }

    /// Number of lanes (trials) of the last run.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The constant-size summary of lane `lane`'s trial, identical to what
    /// the scalar `run_in` would have returned for that lane's seed.
    pub fn lane_outcome(&self, lane: usize) -> TrialOutcome {
        assert!(lane < self.lanes, "lane {lane} out of range");
        TrialOutcome {
            reachable: self.target,
            informed: self.informed_count[lane],
            completed_at: self.completed_at[lane],
            rounds_simulated: self.informed_per_round[lane].len() - 1,
        }
    }

    /// Lane `lane`'s per-round informed counts (`[0] == 1`).
    pub fn lane_informed_per_round(&self, lane: usize) -> &[usize] {
        assert!(lane < self.lanes, "lane {lane} out of range");
        &self.informed_per_round[lane]
    }

    /// The round at which lane `lane` first informed vertex `v`, or `None`
    /// if it never did.
    pub fn lane_first_informed_round(&self, lane: usize, v: Vertex) -> Option<usize> {
        assert!(lane < self.lanes, "lane {lane} out of range");
        let r = self.first_informed[v * MAX_LANES + lane];
        (r != u32::MAX).then_some(r as usize)
    }

    /// The number of rounds lane `lane` needed to inform at least `fraction`
    /// of `reachable` vertices (mirrors
    /// [`crate::TrialWorkspace::rounds_to_reach_fraction`]).
    pub fn lane_rounds_to_reach_fraction(
        &self,
        lane: usize,
        fraction: f64,
        reachable: usize,
    ) -> Option<usize> {
        let target = (fraction * reachable as f64).ceil() as usize;
        self.informed_per_round[lane]
            .iter()
            .position(|&c| c >= target)
    }
}

/// The live-lane mask for a batch of `lanes` trials.
#[inline]
fn live_mask(lanes: usize) -> u64 {
    if lanes >= MAX_LANES {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    }
}

/// Runs one bit-sliced batch: `seeds.len()` independent trials (at most 64)
/// of `protocol` on `sim`'s graph, all lanes advancing together through the
/// word-parallel collision kernel. Results are read back per lane from `ws`
/// ([`LaneWorkspace::lane_outcome`] and friends); lane `l` is bit-identical
/// to the scalar `sim.run_in(_, seeds[l], _)`.
///
/// # Panics
/// Panics if `seeds` is empty or longer than [`MAX_LANES`].
pub fn run_lanes_in<G: GraphView + ?Sized>(
    sim: &RadioSimulator<'_, G>,
    protocol: &mut dyn LaneProtocol<G>,
    seeds: &[u64],
    ws: &mut LaneWorkspace,
) {
    let lanes = seeds.len();
    assert!(
        (1..=MAX_LANES).contains(&lanes),
        "lane batch must hold 1..=64 trials, got {lanes}"
    );
    let graph = sim.graph();
    let source = sim.source();
    let config = sim.config();
    let n = graph.num_vertices();
    let target = sim.reachable_count();
    ws.reset(n, source, lanes, target);
    protocol.reset(graph, source, seeds);
    let mut live = live_mask(lanes);
    let _span = wx_trace::span("radio.lanes");
    let mut word_rounds = 0u64;

    for round in 0..config.max_rounds {
        word_rounds = round as u64 + 1;
        {
            let view = LaneView {
                graph,
                round,
                source,
                live,
                informed: &ws.informed,
            };
            protocol.fill_transmitters(&view, &mut ws.transmit);
        }

        // Collision accumulation: for every transmitting vertex, every
        // neighbor records which lanes heard one (`once`) or more (`twice`)
        // transmitters.
        ws.touched.clear();
        for v in 0..n {
            let t = ws.transmit[v];
            if t == 0 {
                continue;
            }
            debug_assert_eq!(
                t & !(ws.informed[v] & live),
                0,
                "protocol {} transmitted from uninformed or retired lanes",
                protocol.name()
            );
            for u in graph.neighbors_iter(v) {
                if ws.once[u] == 0 {
                    ws.touched.push(u);
                }
                ws.twice[u] |= ws.once[u] & t;
                ws.once[u] |= t;
            }
        }

        // Receivers: exactly one transmitting neighbor, not itself
        // transmitting (`Γ¹(T)` per lane); the newly informed among them
        // update counts and first-informed rounds.
        ws.fresh_list.clear();
        for i in 0..ws.touched.len() {
            let u = ws.touched[i];
            let recv = ws.once[u] & !ws.twice[u] & !ws.transmit[u];
            ws.once[u] = 0;
            ws.twice[u] = 0;
            let new_bits = recv & !ws.informed[u] & live;
            if new_bits != 0 {
                ws.informed[u] |= new_bits;
                ws.fresh[u] = new_bits;
                ws.fresh_list.push(u);
                let mut b = new_bits;
                while b != 0 {
                    let l = b.trailing_zeros() as usize;
                    ws.first_informed[u * MAX_LANES + l] = (round + 1) as u32;
                    ws.informed_count[l] += 1;
                    b &= b - 1;
                }
            }
        }

        // newly ← fresh (targeted clear, then swap — no per-round allocation)
        for &v in &ws.newly_list {
            ws.newly[v] = 0;
        }
        std::mem::swap(&mut ws.newly, &mut ws.fresh);
        std::mem::swap(&mut ws.newly_list, &mut ws.fresh_list);

        // Per-lane bookkeeping: trajectories grow only for live lanes, and
        // the first completion round is pinned exactly as in the scalar
        // engine (with stop_when_complete = false lanes keep simulating but
        // completed_at must not advance).
        let mut still = live;
        let mut lb = live;
        while lb != 0 {
            let l = lb.trailing_zeros() as usize;
            lb &= lb - 1;
            ws.informed_per_round[l].push(ws.informed_count[l]);
            if ws.informed_count[l] == target && ws.completed_at[l].is_none() {
                ws.completed_at[l] = Some(round + 1);
                wx_trace::event_value("radio.lane_retired", (round + 1) as u64);
                if config.stop_when_complete {
                    still &= !(1u64 << l);
                }
            }
        }
        live = still;
        if live == 0 {
            break;
        }
    }

    // Scheduling-independent work counts. Per-lane simulated rounds and
    // final informed counts are bit-identical to the scalar engine's, so
    // `radio.rounds_simulated`/`radio.informed_final` telemetry agrees
    // between the two paths; the lane-occupancy pair is sliced-engine-only
    // (`lane_rounds` is the paid word-round capacity, whose ratio against
    // `rounds_simulated` is the batch's useful occupancy).
    let mut rounds_total = 0u64;
    let mut informed_total = 0u64;
    let mut completed = 0u64;
    for l in 0..lanes {
        rounds_total += (ws.informed_per_round[l].len() - 1) as u64;
        informed_total += ws.informed_count[l] as u64;
        if ws.completed_at[l].is_some() {
            completed += 1;
        }
    }
    wx_trace::count(wx_trace::CounterId::RadioRoundsSimulated, rounds_total);
    wx_trace::count(wx_trace::CounterId::RadioInformedFinal, informed_total);
    wx_trace::count(
        wx_trace::CounterId::RadioLaneRounds,
        word_rounds * lanes as u64,
    );
    wx_trace::count(wx_trace::CounterId::RadioLanesCompleted, completed);
}

/// Allocating convenience wrapper over [`run_lanes_in`]: runs one batch in a
/// fresh workspace and returns the per-lane outcomes in lane order.
pub fn run_lanes<G: GraphView + ?Sized>(
    sim: &RadioSimulator<'_, G>,
    protocol: &mut dyn LaneProtocol<G>,
    seeds: &[u64],
) -> Vec<TrialOutcome> {
    let mut ws = LaneWorkspace::new(sim.graph().num_vertices());
    run_lanes_in(sim, protocol, seeds, &mut ws);
    (0..seeds.len()).map(|l| ws.lane_outcome(l)).collect() // wx-allow(hot-path-alloc): one-shot convenience wrapper; the hot loop is `run_lanes_in`
}

/// Transposes a 64×64 bit matrix in place: bit `j` of `a[i]` moves to bit
/// `i` of `a[j]` (the classical Hacker's Delight block-swap network).
fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut m = 0x0000_0000_FFFF_FFFFu64;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k] ^= t << j;
            a[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// The decay protocol over bit-lanes.
///
/// Per round it builds the eligibility matrix (informed ∧ live, optionally ∧
/// has-an-uninformed-neighbor), transposes it 64×64-tile by tile into
/// per-lane vertex masks, and asks each lane's RNG for its Bernoulli
/// decisions in one bulk call that deposits straight into the mask positions
/// — consuming exactly one draw per eligible vertex in ascending vertex
/// order, the same stream the scalar [`crate::protocols::decay::DecayProtocol`]
/// consumes, so every lane is bit-exact against the scalar run.
#[derive(Debug, Default)]
pub struct LaneDecay {
    /// Rounds per phase; `None` means `⌈log₂ n⌉ + 1` (the scalar default).
    pub phase_length: Option<usize>,
    /// Restrict transmissions to vertices with uninformed neighbors.
    pub only_useful: bool,
    rngs: Vec<WxRng>,
    lanes: usize,
    tiles: usize,
    /// Per-lane eligibility masks, `[lane][tile]` flattened.
    lane_masks: Vec<u64>,
    /// Per-lane decision words aligned with `lane_masks`.
    lane_out: Vec<u64>,
    /// Packed decision stream scratch for the bulk RNG call.
    scratch: Vec<u64>,
}

impl LaneDecay {
    /// Lane decay with an explicit phase length.
    pub fn with_phase_length(phase_length: usize) -> Self {
        LaneDecay {
            phase_length: Some(phase_length.max(1)),
            ..LaneDecay::default()
        }
    }

    fn effective_phase_length(&self, n: usize) -> usize {
        self.phase_length
            .unwrap_or_else(|| (n.max(2) as f64).log2().ceil() as usize + 1)
            .max(1)
    }
}

impl<G: GraphView + ?Sized> LaneProtocol<G> for LaneDecay {
    fn name(&self) -> &'static str {
        "decay"
    }

    fn reset(&mut self, graph: &G, _source: Vertex, seeds: &[u64]) {
        self.lanes = seeds.len();
        self.tiles = graph.num_vertices().div_ceil(64);
        self.rngs.clear();
        for &s in seeds {
            self.rngs.push(rng_from_seed(s));
        }
        self.lane_masks.resize(self.lanes * self.tiles, 0);
        self.lane_out.resize(self.lanes * self.tiles, 0);
    }

    fn fill_transmitters(&mut self, view: &LaneView<'_, G>, transmit: &mut [u64]) {
        let n = view.graph.num_vertices();
        let k = self.effective_phase_length(n);
        let i = view.round % k;
        let p = 0.5f64.powi(i as i32);
        let tiles = self.tiles;

        // Eligibility matrix → per-lane vertex masks, one 64×64 bit
        // transpose per vertex tile.
        for t in 0..tiles {
            let base = t * 64;
            let height = (n - base).min(64);
            let mut tile = [0u64; 64];
            let mut any = 0u64;
            for (j, word) in tile.iter_mut().enumerate().take(height) {
                let v = base + j;
                let mut e = view.informed[v] & view.live;
                if self.only_useful && e != 0 {
                    // lanes with at least one uninformed neighbor of v
                    let mut un = 0u64;
                    for u in view.graph.neighbors_iter(v) {
                        un |= !view.informed[u];
                        if un == u64::MAX {
                            break;
                        }
                    }
                    e &= un;
                }
                *word = e;
                any |= e;
            }
            if any == 0 {
                for l in 0..self.lanes {
                    self.lane_masks[l * tiles + t] = 0;
                }
            } else {
                transpose64(&mut tile);
                for (l, &word) in tile.iter().enumerate().take(self.lanes) {
                    self.lane_masks[l * tiles + t] = word;
                }
            }
        }

        // One bulk Bernoulli call per lane: deposits each decision onto its
        // eligible vertex, consuming exactly one draw per set mask bit in
        // ascending vertex order (the scalar protocol's draw order).
        for l in 0..self.lanes {
            self.rngs[l].fill_masked_decision_bits(
                p,
                &self.lane_masks[l * tiles..(l + 1) * tiles],
                &mut self.scratch,
                &mut self.lane_out[l * tiles..(l + 1) * tiles],
            );
        }

        // Per-lane decisions → lane-major transmitter words (the inverse
        // transpose).
        for t in 0..tiles {
            let base = t * 64;
            let height = (n - base).min(64);
            let mut tile = [0u64; 64];
            let mut any = 0u64;
            for (l, word) in tile.iter_mut().enumerate().take(self.lanes) {
                *word = self.lane_out[l * tiles + t];
                any |= *word;
            }
            if any == 0 {
                transmit[base..base + height]
                    .iter_mut()
                    .for_each(|w| *w = 0);
            } else {
                transpose64(&mut tile);
                transmit[base..base + height].copy_from_slice(&tile[..height]);
            }
        }
    }
}

/// Adapts any scalar [`BroadcastProtocol`] to the lane engine by mirroring
/// the scalar simulation state.
///
/// Deterministic protocols (flooding, round-robin, the spokesman schedule)
/// produce the same trajectory in every lane, so the adapter runs the scalar
/// protocol **once** per round against a mirrored informed/newly-informed
/// state and broadcasts the resulting transmitter mask to all live lanes —
/// 64 trials for the price of one scalar round plus O(words) broadcasting.
/// Do not use it for randomized protocols: all lanes would replay one stream
/// instead of running independent trials (use a native [`LaneProtocol`] like
/// [`LaneDecay`] instead).
pub struct LaneMirror<P> {
    inner: P,
    informed: VertexSet,
    newly: VertexSet,
    fresh: VertexSet,
    transmitters: VertexSet,
    scratch: NeighborhoodScratch,
    rng: WxRng,
    /// Vertices whose transmit words were written last round.
    prev: Vec<usize>,
    source: Vertex,
}

impl<P> LaneMirror<P> {
    /// Wraps a scalar protocol for lane execution.
    pub fn new(inner: P) -> Self {
        LaneMirror {
            inner,
            informed: VertexSet::empty(0),
            newly: VertexSet::empty(0),
            fresh: VertexSet::empty(0),
            transmitters: VertexSet::empty(0),
            scratch: NeighborhoodScratch::new(0),
            rng: rng_from_seed(0),
            prev: Vec::new(),
            source: 0,
        }
    }
}

impl<G: GraphView + ?Sized, P: BroadcastProtocol<G>> LaneProtocol<G> for LaneMirror<P> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn reset(&mut self, graph: &G, source: Vertex, seeds: &[u64]) {
        let n = graph.num_vertices();
        self.source = source;
        if self.informed.universe() != n {
            self.informed = VertexSet::empty(n);
            self.newly = VertexSet::empty(n);
            self.fresh = VertexSet::empty(n);
            self.transmitters = VertexSet::empty(n);
        } else {
            self.informed.clear();
            self.newly.clear();
            self.fresh.clear();
            self.transmitters.clear();
        }
        self.informed.insert(source);
        self.newly.insert(source);
        self.prev.clear();
        // Deterministic protocols ignore the RNG; seed from lane 0 so even a
        // (misused) randomized inner protocol stays reproducible.
        self.rng = rng_from_seed(seeds[0]);
        self.inner.reset(graph, source);
    }

    fn fill_transmitters(&mut self, view: &LaneView<'_, G>, transmit: &mut [u64]) {
        // One scalar protocol invocation against the mirrored state…
        self.transmitters.clear();
        let rv = RoundView {
            graph: view.graph,
            round: view.round,
            source: self.source,
            informed: &self.informed,
            newly_informed: &self.newly,
        };
        self.inner
            .transmitters_into(&rv, &mut self.rng, &mut self.transmitters);

        // …broadcast to every live lane…
        for &v in &self.prev {
            transmit[v] = 0;
        }
        self.prev.clear();
        for v in self.transmitters.iter() {
            transmit[v] = view.live;
            self.prev.push(v);
        }

        // …and advance the mirror one round (the scalar engine's update).
        let receivers = self
            .scratch
            .unique_neighborhood_sorted(view.graph, &self.transmitters);
        self.fresh.clear();
        for &v in receivers {
            if self.informed.insert(v) {
                self.fresh.insert(v);
            }
        }
        std::mem::swap(&mut self.newly, &mut self.fresh);
    }
}

thread_local! {
    /// One lane workspace per thread, shared by every batch executed on
    /// that thread (the lane analogue of
    /// [`crate::workspace::with_thread_workspace`]).
    static THREAD_LANE_WORKSPACE: RefCell<LaneWorkspace> = RefCell::new(LaneWorkspace::new(0));
}

/// Runs `f` with this thread's shared [`LaneWorkspace`] — the pool behind
/// the batched trial runner in [`crate::trials`].
///
/// # Panics
/// Panics if `f` re-enters `with_thread_lane_workspace` on the same thread.
pub fn with_thread_lane_workspace<R>(f: impl FnOnce(&mut LaneWorkspace) -> R) -> R {
    THREAD_LANE_WORKSPACE.with(|cell| {
        let mut ws = cell.borrow_mut();
        f(&mut ws)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::decay::DecayProtocol;
    use crate::protocols::naive::NaiveFlooding;
    use crate::protocols::round_robin::RoundRobin;
    use crate::simulator::SimulatorConfig;
    use crate::workspace::TrialWorkspace;
    use wx_graph::random::derive_seed;

    #[test]
    fn transpose64_matches_naive() {
        let mut rng = rng_from_seed(99);
        let mut a = [0u64; 64];
        for w in a.iter_mut() {
            *w = rand::RngCore::next_u64(&mut rng);
        }
        let mut t = a;
        transpose64(&mut t);
        for (i, &row) in a.iter().enumerate() {
            for (j, &col) in t.iter().enumerate() {
                assert_eq!((col >> i) & 1, (row >> j) & 1, "({i}, {j})");
            }
        }
        // involution
        transpose64(&mut t);
        assert_eq!(t, a);
    }

    fn assert_lane_matches_scalar<G: GraphView + ?Sized>(
        sim: &RadioSimulator<'_, G>,
        lane_ws: &LaneWorkspace,
        lane: usize,
        seed: u64,
        mut scalar: impl BroadcastProtocol<G>,
    ) {
        let mut ws = TrialWorkspace::new(sim.graph().num_vertices());
        let expect = sim.run_in(&mut scalar, seed, &mut ws);
        assert_eq!(
            lane_ws.lane_outcome(lane),
            expect,
            "lane {lane} seed {seed}"
        );
        assert_eq!(
            lane_ws.lane_informed_per_round(lane),
            ws.informed_per_round(),
            "lane {lane} trajectory"
        );
        for v in 0..sim.graph().num_vertices() {
            assert_eq!(
                lane_ws.lane_first_informed_round(lane, v),
                ws.first_informed_round()[v],
                "lane {lane} vertex {v}"
            );
        }
    }

    #[test]
    fn decay_lanes_are_bit_exact_against_scalar_runs() {
        let g = wx_constructions::families::random_regular_graph(80, 4, 3).unwrap();
        let sim = RadioSimulator::new(&g, 0, SimulatorConfig::default());
        let seeds: Vec<u64> = (0..64).map(|t| derive_seed(42, t)).collect();
        let mut ws = LaneWorkspace::new(0);
        let mut proto = LaneDecay::default();
        run_lanes_in(&sim, &mut proto, &seeds, &mut ws);
        for (lane, &seed) in seeds.iter().enumerate() {
            assert_lane_matches_scalar(&sim, &ws, lane, seed, DecayProtocol::default());
        }
    }

    #[test]
    fn partial_batches_match_scalar_runs() {
        let g = wx_constructions::families::random_regular_graph(66, 4, 9).unwrap();
        let sim = RadioSimulator::new(&g, 5, SimulatorConfig::default());
        let mut ws = LaneWorkspace::new(0);
        for lanes in [1usize, 2, 7, 33] {
            let seeds: Vec<u64> = (0..lanes as u64).map(|t| derive_seed(7, t)).collect();
            let mut proto = LaneDecay::default();
            run_lanes_in(&sim, &mut proto, &seeds, &mut ws);
            assert_eq!(ws.lanes(), lanes);
            for (lane, &seed) in seeds.iter().enumerate() {
                assert_lane_matches_scalar(&sim, &ws, lane, seed, DecayProtocol::default());
            }
        }
    }

    #[test]
    fn mirror_adapter_replicates_deterministic_protocols() {
        let (g, src) = wx_constructions::families::complete_plus_graph(8).unwrap();
        let sim = RadioSimulator::new(&g, src, SimulatorConfig::default());
        let seeds = [3u64, 4, 5];
        let mut ws = LaneWorkspace::new(0);
        let mut flood = LaneMirror::new(NaiveFlooding);
        run_lanes_in(&sim, &mut flood, &seeds, &mut ws);
        for (lane, &seed) in seeds.iter().enumerate() {
            assert_lane_matches_scalar(&sim, &ws, lane, seed, NaiveFlooding);
        }
        let mut rr = LaneMirror::new(RoundRobin::default());
        run_lanes_in(&sim, &mut rr, &seeds, &mut ws);
        for (lane, &seed) in seeds.iter().enumerate() {
            assert_lane_matches_scalar(&sim, &ws, lane, seed, RoundRobin::default());
        }
    }

    #[test]
    fn only_useful_lane_decay_matches_scalar() {
        let g = wx_constructions::families::random_regular_graph(48, 4, 2).unwrap();
        let sim = RadioSimulator::new(&g, 0, SimulatorConfig::default());
        let seeds: Vec<u64> = (0..16).map(|t| derive_seed(13, t)).collect();
        let mut ws = LaneWorkspace::new(0);
        let mut proto = LaneDecay {
            only_useful: true,
            ..LaneDecay::default()
        };
        run_lanes_in(&sim, &mut proto, &seeds, &mut ws);
        for (lane, &seed) in seeds.iter().enumerate() {
            assert_lane_matches_scalar(
                &sim,
                &ws,
                lane,
                seed,
                DecayProtocol {
                    phase_length: None,
                    only_useful: true,
                },
            );
        }
    }

    #[test]
    fn lanes_match_scalar_without_early_stopping() {
        let g = wx_constructions::families::grid_graph(5, 5).unwrap();
        let cfg = SimulatorConfig {
            max_rounds: 40,
            stop_when_complete: false,
        };
        let sim = RadioSimulator::new(&g, 0, cfg);
        let seeds: Vec<u64> = (0..8).map(|t| derive_seed(21, t)).collect();
        let mut ws = LaneWorkspace::new(0);
        let mut proto = LaneDecay::default();
        run_lanes_in(&sim, &mut proto, &seeds, &mut ws);
        for (lane, &seed) in seeds.iter().enumerate() {
            assert_lane_matches_scalar(&sim, &ws, lane, seed, DecayProtocol::default());
            // all lanes simulated the full horizon
            assert_eq!(ws.lane_outcome(lane).rounds_simulated, 40);
        }
    }

    #[test]
    fn disconnected_graphs_complete_on_the_reachable_component() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let sim = RadioSimulator::new(&g, 0, SimulatorConfig::default());
        let seeds: Vec<u64> = (0..5).map(|t| derive_seed(2, t)).collect();
        let outcomes = run_lanes(&sim, &mut LaneDecay::default(), &seeds);
        for (lane, (&seed, outcome)) in seeds.iter().zip(outcomes.iter()).enumerate() {
            assert_eq!(outcome.reachable, 3, "lane {lane}");
            let mut ws = TrialWorkspace::new(6);
            let expect = sim.run_in(&mut DecayProtocol::default(), seed, &mut ws);
            assert_eq!(*outcome, expect);
        }
    }

    #[test]
    fn workspace_reuse_across_graph_sizes_is_clean() {
        let small = wx_constructions::families::grid_graph(3, 3).unwrap();
        let big = wx_constructions::families::random_regular_graph(70, 4, 1).unwrap();
        let mut ws = LaneWorkspace::new(0);
        for g in [&big, &small, &big] {
            let sim = RadioSimulator::new(g, 0, SimulatorConfig::default());
            let seeds: Vec<u64> = (0..10).map(|t| derive_seed(4, t)).collect();
            let mut proto = LaneDecay::default();
            run_lanes_in(&sim, &mut proto, &seeds, &mut ws);
            for (lane, &seed) in seeds.iter().enumerate() {
                assert_lane_matches_scalar(&sim, &ws, lane, seed, DecayProtocol::default());
            }
        }
    }

    #[test]
    fn per_lane_seed_streams_are_independent() {
        // Lane seeds come from `derive_seed(base, trial)`: the derivation
        // must not collide over realistic trial ranges (a collision would
        // silently replay one RNG stream in two "independent" trials)...
        for base in [0u64, 0xBE, 77, u64::MAX] {
            let mut seeds = std::collections::HashSet::new();
            for trial in 0..4096u64 {
                assert!(
                    seeds.insert(derive_seed(base, trial)),
                    "derive_seed({base}, {trial}) collided with an earlier trial"
                );
            }
        }
        // ...and the per-lane streams must actually diverge: 64 decay lanes
        // on one graph cannot all finish in the same round.
        let g = wx_constructions::families::random_regular_graph(96, 4, 5).unwrap();
        let sim = RadioSimulator::new(&g, 0, SimulatorConfig::default());
        let seeds: Vec<u64> = (0..64).map(|t| derive_seed(0xBE, t)).collect();
        let outcomes = run_lanes(&sim, &mut LaneDecay::default(), &seeds);
        let first = outcomes[0].completed_at;
        assert!(
            outcomes.iter().any(|o| o.completed_at != first),
            "all 64 lanes completed at {first:?} — lane streams are not independent"
        );
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn oversized_batches_are_rejected() {
        let g = wx_constructions::families::grid_graph(2, 2).unwrap();
        let sim = RadioSimulator::new(&g, 0, SimulatorConfig::default());
        let seeds = vec![0u64; 65];
        run_lanes(&sim, &mut LaneDecay::default(), &seeds);
    }
}
