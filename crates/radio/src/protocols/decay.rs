//! The Bar-Yehuda–Goldreich–Itai decay protocol \[5\].
//!
//! Time is divided into phases of `k = ⌈log₂ n⌉ + 1` rounds. In the `i`-th
//! round of each phase (`i = 0, …, k−1`), every informed vertex transmits
//! independently with probability `2^{-i}`. For any uninformed vertex with
//! `d ≥ 1` informed neighbors there is a round in each phase where the
//! expected number of transmitting neighbors is `Θ(1)`, so it receives the
//! message within `O(log n)` phases with constant probability per phase —
//! the classical randomized broadcast that the paper's decay-style argument
//! (Lemma 4.2) is an offline, existential analogue of.

use crate::protocols::BroadcastProtocol;
use crate::simulator::RoundView;
use rand::Rng;
use wx_graph::random::WxRng;
use wx_graph::{GraphView, Vertex, VertexSet};

/// The decay protocol.
#[derive(Clone, Copy, Debug, Default)]
pub struct DecayProtocol {
    /// Number of rounds per phase; `None` means `⌈log₂ n⌉ + 1`, the standard
    /// choice when only `n` is known.
    pub phase_length: Option<usize>,
    /// Restrict transmissions to vertices that still have uninformed
    /// neighbors (requires neighborhood knowledge; defaults to `false`,
    /// the classical fully-local protocol).
    pub only_useful: bool,
}

impl DecayProtocol {
    /// Decay with an explicit phase length (e.g. `⌈log₂ Δ⌉ + 1` when a degree
    /// bound is known).
    pub fn with_phase_length(phase_length: usize) -> Self {
        DecayProtocol {
            phase_length: Some(phase_length.max(1)),
            only_useful: false,
        }
    }

    fn effective_phase_length(&self, n: usize) -> usize {
        self.phase_length
            .unwrap_or_else(|| (n.max(2) as f64).log2().ceil() as usize + 1)
            .max(1)
    }
}

impl<G: GraphView + ?Sized> BroadcastProtocol<G> for DecayProtocol {
    fn name(&self) -> &'static str {
        "decay"
    }

    fn reset(&mut self, _graph: &G, _source: Vertex) {}

    fn transmitters_into(&mut self, view: &RoundView<'_, G>, rng: &mut WxRng, out: &mut VertexSet) {
        let n = view.graph.num_vertices();
        let k = self.effective_phase_length(n);
        let i = view.round % k;
        let p = 0.5f64.powi(i as i32);
        // Iterate the informed bitset directly (members are sorted, so the
        // inserts below append in order) — no boxed iterator, no `to_vec`,
        // no per-round allocation. The usefulness test short-circuits before
        // the rng draw so the random stream matches the historical
        // materialize-then-filter implementation bit for bit.
        for v in view.informed.iter() {
            if (!self.only_useful || crate::protocols::is_useful_transmitter(view, v))
                && rng.gen_bool(p)
            {
                out.insert(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::EnsembleStats;
    use crate::simulator::{RadioSimulator, SimulatorConfig};

    #[test]
    fn completes_on_c_plus_where_flooding_stalls() {
        let (g, src) = wx_constructions::families::complete_plus_graph(10).unwrap();
        let sim = RadioSimulator::new(&g, src, SimulatorConfig::default());
        let outcomes: Vec<_> = (0..10)
            .map(|seed| sim.run(&mut DecayProtocol::default(), seed))
            .collect();
        let stats = EnsembleStats::from_outcomes(&outcomes);
        assert_eq!(stats.completed, 10, "decay failed on C⁺: {stats:?}");
    }

    #[test]
    fn phase_length_defaults_to_log_n() {
        let d = DecayProtocol::default();
        assert_eq!(d.effective_phase_length(16), 5);
        assert_eq!(d.effective_phase_length(1024), 11);
        assert_eq!(
            DecayProtocol::with_phase_length(3).effective_phase_length(1_000_000),
            3
        );
        assert_eq!(
            DecayProtocol::with_phase_length(0).effective_phase_length(8),
            1
        );
    }

    #[test]
    fn first_round_of_each_phase_transmits_everything() {
        // with probability 2^0 = 1, every informed vertex transmits in the
        // first round of a phase regardless of the rng
        let g = wx_graph::Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let informed = g.vertex_set([0, 1]);
        let newly = g.vertex_set([1]);
        let view = RoundView {
            graph: &g,
            round: 0,
            source: 0,
            informed: &informed,
            newly_informed: &newly,
        };
        let mut rng = wx_graph::random::rng_from_seed(5);
        let t = DecayProtocol::default().transmitters(&view, &mut rng);
        assert_eq!(t.to_vec(), vec![0, 1]);
    }

    #[test]
    fn completes_reasonably_fast_on_random_regular_graphs() {
        let g = wx_constructions::families::random_regular_graph(128, 6, 3).unwrap();
        let sim = RadioSimulator::new(&g, 0, SimulatorConfig::default());
        let outcomes: Vec<_> = (0..5)
            .map(|seed| sim.run(&mut DecayProtocol::default(), seed))
            .collect();
        let stats = EnsembleStats::from_outcomes(&outcomes);
        assert_eq!(stats.completed, 5);
        // D = O(log n) here; decay should finish well within a few hundred rounds
        assert!(stats.max_rounds.unwrap() < 500, "{stats:?}");
    }

    #[test]
    fn only_useful_variant_never_transmits_from_interior() {
        let g = wx_graph::Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let informed = g.vertex_set([0, 1, 2]);
        let newly = g.vertex_set([2]);
        let view = RoundView {
            graph: &g,
            round: 0,
            source: 0,
            informed: &informed,
            newly_informed: &newly,
        };
        let mut rng = wx_graph::random::rng_from_seed(5);
        let mut proto = DecayProtocol {
            phase_length: None,
            only_useful: true,
        };
        let t = proto.transmitters(&view, &mut rng);
        assert_eq!(t.to_vec(), vec![2]);
    }
}
