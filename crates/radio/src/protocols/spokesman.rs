//! Centralized spokesman-schedule broadcast.
//!
//! This protocol is the algorithmic payoff of wireless expansion: in every
//! round, take the current informed set `S`, build the bipartite view
//! `(S, Γ⁻(S))`, run a Spokesman-Election solver to pick the subset
//! `S' ⊆ S` with (approximately) maximum unique coverage, and have exactly
//! `S'` transmit. If the network is an `(αw, βw)`-wireless expander, every
//! such round informs at least `βw·|S|` new vertices while `|S| ≤ αw·n`, so
//! the informed set grows geometrically — this is the broadcast framework of
//! Chlamtac–Weinstein \[7\] with the paper's improved spokesman bounds plugged
//! in.
//!
//! The schedule is *centralized* (it needs the topology); it serves as the
//! algorithmic upper bound the distributed decay protocol is compared
//! against, and as the optimal-schedule adversary in the Section-5
//! lower-bound experiment (even this schedule cannot beat `Ω(D·log(n/D))` on
//! the broadcast chain).

use crate::protocols::BroadcastProtocol;
use crate::simulator::RoundView;
use wx_graph::random::WxRng;
use wx_graph::{BipartiteGraph, GraphView, VertexSet};
use wx_spokesman::{PortfolioSolver, SpokesmanSolver};

/// Which spokesman solver the schedule uses each round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleSolver {
    /// The full polynomial-time portfolio (best quality, slowest).
    Portfolio,
    /// The fast portfolio (Procedure Partition + greedy).
    FastPortfolio,
    /// Greedy only (cheapest).
    Greedy,
}

/// Centralized spokesman-schedule broadcast protocol.
#[derive(Clone, Copy, Debug)]
pub struct SpokesmanBroadcast {
    /// Solver choice per round.
    pub solver: ScheduleSolver,
}

impl Default for SpokesmanBroadcast {
    fn default() -> Self {
        SpokesmanBroadcast {
            solver: ScheduleSolver::FastPortfolio,
        }
    }
}

impl SpokesmanBroadcast {
    /// A schedule using the full portfolio each round.
    pub fn thorough() -> Self {
        SpokesmanBroadcast {
            solver: ScheduleSolver::Portfolio,
        }
    }
}

impl<G: GraphView + ?Sized> BroadcastProtocol<G> for SpokesmanBroadcast {
    fn name(&self) -> &'static str {
        "spokesman-schedule"
    }

    fn transmitters_into(
        &mut self,
        view: &RoundView<'_, G>,
        _rng: &mut WxRng,
        out: &mut VertexSet,
    ) {
        // Frontier-only optimization: restrict S to informed vertices with at
        // least one uninformed neighbor. Their S-excluding unique coverage is
        // unaffected (interior vertices contribute no external edges) and the
        // spokesman instance shrinks dramatically on large graphs.
        let frontier = crate::protocols::useful_transmitters(view);
        if frontier.is_empty() {
            return;
        }
        let (bip, left_ids, _right_ids) =
            BipartiteGraph::from_set_in_graph(view.graph, view.informed);
        // Map the frontier into the bipartite instance's left indices and
        // restrict to it.
        let mut keep = VertexSet::empty(bip.num_left());
        for (i, &orig) in left_ids.iter().enumerate() {
            if frontier.contains(orig) {
                keep.insert(i);
            }
        }
        let (restricted, kept_left, _) = bip.restrict_left(&keep);
        let seed = wx_graph::random::derive_seed(0xB40ADCA57, view.round as u64);
        let result = match self.solver {
            ScheduleSolver::Portfolio => PortfolioSolver::default().solve(&restricted, seed),
            ScheduleSolver::FastPortfolio => PortfolioSolver::fast().solve(&restricted, seed),
            ScheduleSolver::Greedy => wx_spokesman::GreedyMinDegreeSolver.solve(&restricted, seed),
        };
        // Translate back: restricted index -> bipartite left index (via
        // `kept_left`) -> original vertex id (via `left_ids`).
        for local in result.subset.iter() {
            out.insert(left_ids[kept_left[local]]);
        }
        // Never return an empty transmitter set while uninformed neighbors
        // remain (could happen if the solver finds zero unique coverage):
        // fall back to a single frontier vertex, which always informs
        // someone... unless that someone has other informed neighbors — in
        // which case any single transmitter is still the safest fallback.
        if out.is_empty() {
            let v = frontier.iter().next().expect("frontier non-empty");
            out.insert(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::EnsembleStats;
    use crate::protocols::naive::NaiveFlooding;
    use crate::simulator::{RadioSimulator, SimulatorConfig};

    #[test]
    fn completes_on_c_plus_in_a_few_rounds() {
        let (g, src) = wx_constructions::families::complete_plus_graph(12).unwrap();
        let sim = RadioSimulator::new(&g, src, SimulatorConfig::default());
        let outcome = sim.run(&mut SpokesmanBroadcast::default(), 1);
        assert!(outcome.completed_at.is_some());
        assert!(
            outcome.completed_at.unwrap() <= 4,
            "spokesman schedule took {} rounds on C⁺",
            outcome.completed_at.unwrap()
        );
        // while naive flooding never completes
        assert_eq!(sim.run(&mut NaiveFlooding, 1).completed_at, None);
    }

    #[test]
    fn beats_decay_on_expanders() {
        let g = wx_constructions::families::random_regular_graph(128, 6, 11).unwrap();
        let sim = RadioSimulator::new(&g, 0, SimulatorConfig::default());
        let spokesman = sim.run(&mut SpokesmanBroadcast::default(), 3);
        let decay_outcomes: Vec<_> = (0..5)
            .map(|s| sim.run(&mut crate::protocols::decay::DecayProtocol::default(), s))
            .collect();
        let decay_stats = EnsembleStats::from_outcomes(&decay_outcomes);
        assert!(spokesman.completed_at.is_some());
        assert!(decay_stats.completed > 0);
        assert!(
            (spokesman.completed_at.unwrap() as f64) <= decay_stats.mean_rounds.unwrap(),
            "spokesman {} vs decay mean {}",
            spokesman.completed_at.unwrap(),
            decay_stats.mean_rounds.unwrap()
        );
    }

    #[test]
    fn transmitters_are_always_informed_and_nonempty_while_incomplete() {
        let (g, src) = wx_constructions::families::complete_plus_graph(8).unwrap();
        let informed = g.vertex_set([0, 1, src]);
        let newly = g.vertex_set([0, 1]);
        let view = RoundView {
            graph: &g,
            round: 1,
            source: src,
            informed: &informed,
            newly_informed: &newly,
        };
        let mut rng = wx_graph::random::rng_from_seed(0);
        let t = SpokesmanBroadcast::default().transmitters(&view, &mut rng);
        assert!(!t.is_empty());
        assert!(t.is_subset_of(&informed));
        // on C⁺ the chosen subset must be a single clique vertex ({x} or {y})
        assert_eq!(t.len(), 1);
        assert!(t.contains(0) || t.contains(1));
    }

    #[test]
    fn greedy_variant_also_completes() {
        let g = wx_constructions::families::grid_graph(6, 6).unwrap();
        let sim = RadioSimulator::new(&g, 0, SimulatorConfig::default());
        let mut proto = SpokesmanBroadcast {
            solver: ScheduleSolver::Greedy,
        };
        assert!(sim.run(&mut proto, 0).completed_at.is_some());
    }
}
