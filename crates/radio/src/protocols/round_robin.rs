//! Deterministic round-robin broadcast.
//!
//! Vertex `v` transmits (when informed) only in rounds `r` with
//! `r ≡ v (mod n)`. At most one vertex transmits per round, so collisions
//! are impossible and broadcast always completes — in `O(n·D)` rounds, the
//! trivially correct but slow deterministic baseline against which the decay
//! and spokesman protocols are compared.

use crate::protocols::BroadcastProtocol;
use crate::simulator::RoundView;
use wx_graph::random::WxRng;
use wx_graph::{GraphView, VertexSet};

/// Round-robin single-transmitter schedule.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundRobin {
    /// Skip turns of vertices that have no uninformed neighbors (a mild,
    /// still-deterministic optimization; defaults to `false` so the schedule
    /// matches the textbook definition).
    pub skip_useless_turns: bool,
}

impl RoundRobin {
    /// A variant that skips turns of vertices with no uninformed neighbors.
    pub fn skipping() -> Self {
        RoundRobin {
            skip_useless_turns: true,
        }
    }
}

impl<G: GraphView + ?Sized> BroadcastProtocol<G> for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn transmitters_into(
        &mut self,
        view: &RoundView<'_, G>,
        _rng: &mut WxRng,
        out: &mut VertexSet,
    ) {
        let n = view.graph.num_vertices();
        if n == 0 {
            return;
        }
        let turn = view.round % n;
        if view.informed.contains(turn) {
            let useful = !self.skip_useless_turns
                || view
                    .graph
                    .neighbors_iter(turn)
                    .any(|u| !view.informed.contains(u));
            if useful {
                out.insert(turn);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::{RadioSimulator, SimulatorConfig};
    use wx_graph::Graph;

    #[test]
    fn at_most_one_transmitter_per_round() {
        let g = Graph::from_edges(6, (0..5).map(|i| (i, i + 1))).unwrap();
        let informed = g.vertex_set(0..6);
        let newly = g.vertex_set([5]);
        let mut rng = wx_graph::random::rng_from_seed(0);
        for round in 0..12 {
            let view = RoundView {
                graph: &g,
                round,
                source: 0,
                informed: &informed,
                newly_informed: &newly,
            };
            assert!(RoundRobin::default().transmitters(&view, &mut rng).len() <= 1);
        }
    }

    #[test]
    fn completes_on_collision_heavy_graphs() {
        let (g, src) = wx_constructions::families::complete_plus_graph(8).unwrap();
        let sim = RadioSimulator::new(&g, src, SimulatorConfig::default());
        let outcome = sim.run(&mut RoundRobin::default(), 0);
        assert!(outcome.completed_at.is_some());
        // the bound is at most n rounds per BFS layer
        assert!(outcome.completed_at.unwrap() <= g.num_vertices() * 3);
    }

    #[test]
    fn skipping_variant_is_no_slower() {
        let (g, src) = wx_constructions::families::complete_plus_graph(8).unwrap();
        let sim = RadioSimulator::new(&g, src, SimulatorConfig::default());
        let plain = sim.run(&mut RoundRobin::default(), 0).completed_at.unwrap();
        let skipping = sim
            .run(&mut RoundRobin::skipping(), 0)
            .completed_at
            .unwrap();
        assert!(skipping <= plain);
    }
}
