//! Broadcast protocols for the radio collision model.
//!
//! | Protocol | Knowledge | Paper role |
//! |----------|-----------|------------|
//! | [`naive::NaiveFlooding`] | local | the strawman the introduction rules out (stalls on `C⁺`) |
//! | [`round_robin::RoundRobin`] | ids + `n` | slow but collision-free deterministic baseline |
//! | [`decay::DecayProtocol`] | `n` (or a degree bound) | the Bar-Yehuda–Goldreich–Itai decay protocol [5], the classical `O(D·log n + log² n)`-style randomized broadcast |
//! | [`spokesman::SpokesmanBroadcast`] | centralized | transmits from the subset a Spokesman-Election solver picks — the algorithmic content of wireless expansion (and of the Chlamtac–Weinstein broadcast framework [7]) |

pub mod decay;
pub mod naive;
pub mod round_robin;
pub mod spokesman;

use crate::simulator::RoundView;
use serde::{Deserialize, Serialize};
use wx_graph::random::WxRng;
use wx_graph::{Graph, Vertex, VertexSet};

/// Identifies a protocol in reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// Every informed vertex transmits every round.
    NaiveFlooding,
    /// Vertex `v` transmits only in rounds `≡ v (mod n)`.
    RoundRobin,
    /// The randomized decay protocol.
    Decay,
    /// Centralized spokesman-schedule broadcast.
    Spokesman,
}

/// The interface every broadcast protocol implements.
pub trait BroadcastProtocol {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Called once before a simulation starts; protocols may precompute
    /// whatever they need from the topology (centralized protocols) or just
    /// reset their per-run state.
    fn reset(&mut self, _graph: &Graph, _source: Vertex) {}

    /// Chooses which informed vertices transmit this round. The returned set
    /// must be a subset of `view.informed`.
    fn transmitters(&mut self, view: &RoundView<'_>, rng: &mut WxRng) -> VertexSet;
}

/// Helper shared by protocols: the subset of informed vertices that still
/// have at least one uninformed neighbor (transmitting from anywhere else is
/// pointless).
pub fn useful_transmitters(view: &RoundView<'_>) -> VertexSet {
    VertexSet::from_iter(
        view.graph.num_vertices(),
        view.informed.iter().filter(|&v| {
            view.graph
                .neighbors(v)
                .iter()
                .any(|&u| !view.informed.contains(u))
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::{RadioSimulator, SimulatorConfig};

    #[test]
    fn useful_transmitters_excludes_interior_vertices() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let informed = g.vertex_set([0, 1, 2]);
        let newly = g.vertex_set([2]);
        let view = RoundView {
            graph: &g,
            round: 3,
            source: 0,
            informed: &informed,
            newly_informed: &newly,
        };
        // only vertex 2 has an uninformed neighbor (3)
        assert_eq!(useful_transmitters(&view).to_vec(), vec![2]);
    }

    #[test]
    fn all_protocols_complete_on_a_small_tree() {
        let g = wx_constructions::families::complete_k_ary_tree(2, 4).unwrap();
        let sim = RadioSimulator::new(&g, 0, SimulatorConfig::default());
        let mut protos: Vec<Box<dyn BroadcastProtocol>> = vec![
            Box::new(naive::NaiveFlooding),
            Box::new(round_robin::RoundRobin::default()),
            Box::new(decay::DecayProtocol::default()),
            Box::new(spokesman::SpokesmanBroadcast::default()),
        ];
        for p in protos.iter_mut() {
            let outcome = sim.run(p.as_mut(), 42);
            assert!(
                outcome.completed_at.is_some(),
                "{} did not complete on the binary tree",
                p.name()
            );
        }
    }
}
