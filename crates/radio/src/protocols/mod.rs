//! Broadcast protocols for the radio collision model.
//!
//! | Protocol | Knowledge | Paper role |
//! |----------|-----------|------------|
//! | [`naive::NaiveFlooding`] | local | the strawman the introduction rules out (stalls on `C⁺`) |
//! | [`round_robin::RoundRobin`] | ids + `n` | slow but collision-free deterministic baseline |
//! | [`decay::DecayProtocol`] | `n` (or a degree bound) | the Bar-Yehuda–Goldreich–Itai decay protocol \[5\], the classical `O(D·log n + log² n)`-style randomized broadcast |
//! | [`spokesman::SpokesmanBroadcast`] | centralized | transmits from the subset a Spokesman-Election solver picks — the algorithmic content of wireless expansion (and of the Chlamtac–Weinstein broadcast framework \[7\]) |

pub mod decay;
pub mod naive;
pub mod round_robin;
pub mod spokesman;

use crate::simulator::RoundView;
use serde::{Deserialize, Serialize};
use wx_graph::random::WxRng;
use wx_graph::{Graph, GraphView, Vertex, VertexSet};

/// Identifies a protocol in reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// Every informed vertex transmits every round.
    NaiveFlooding,
    /// Vertex `v` transmits only in rounds `≡ v (mod n)`.
    RoundRobin,
    /// The randomized decay protocol.
    Decay,
    /// Centralized spokesman-schedule broadcast.
    Spokesman,
}

impl ProtocolKind {
    /// Every protocol kind, in the module table's order.
    pub const ALL: [ProtocolKind; 4] = [
        ProtocolKind::NaiveFlooding,
        ProtocolKind::RoundRobin,
        ProtocolKind::Decay,
        ProtocolKind::Spokesman,
    ];

    /// The short name used in reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::NaiveFlooding => "naive-flooding",
            ProtocolKind::RoundRobin => "round-robin",
            ProtocolKind::Decay => "decay",
            ProtocolKind::Spokesman => "spokesman",
        }
    }

    /// Parses a [`ProtocolKind::name`] string (case-insensitive; also
    /// accepts the bare aliases `naive` and `flooding`).
    pub fn parse(s: &str) -> Option<ProtocolKind> {
        match s.to_ascii_lowercase().as_str() {
            "naive-flooding" | "naive" | "flooding" => Some(ProtocolKind::NaiveFlooding),
            "round-robin" | "roundrobin" => Some(ProtocolKind::RoundRobin),
            "decay" => Some(ProtocolKind::Decay),
            "spokesman" | "spokesman-schedule" => Some(ProtocolKind::Spokesman),
            _ => None,
        }
    }

    /// `true` if the protocol's behavior depends on the trial seed. Running
    /// multiple Monte-Carlo trials of a non-randomized protocol on a fixed
    /// graph reproduces the same run; batch drivers use this to avoid
    /// simulating identical trials.
    pub fn randomized(self) -> bool {
        matches!(self, ProtocolKind::Decay)
    }

    /// Builds a fresh default-configured instance of this protocol — the
    /// by-name factory declarative callers (scenario specs, CLI flags) use.
    /// Generic over the graph backend the protocol will run on (inferred
    /// from the simulator; defaults to the CSR [`Graph`]).
    pub fn build<G: GraphView + ?Sized>(self) -> Box<dyn BroadcastProtocol<G>> {
        match self {
            ProtocolKind::NaiveFlooding => Box::new(naive::NaiveFlooding),
            ProtocolKind::RoundRobin => Box::new(round_robin::RoundRobin::default()),
            ProtocolKind::Decay => Box::new(decay::DecayProtocol::default()),
            ProtocolKind::Spokesman => Box::new(spokesman::SpokesmanBroadcast::default()),
        }
    }

    /// Builds the bit-sliced lane form of this protocol for the engine in
    /// [`crate::bitslice`]: decay runs natively over lanes
    /// ([`crate::bitslice::LaneDecay`], per-lane RNG streams bit-exact
    /// against the scalar protocol); the deterministic protocols are wrapped
    /// in [`crate::bitslice::LaneMirror`], which runs the scalar protocol
    /// once per round and broadcasts the transmitter mask to every lane.
    pub fn build_lanes<'g, G: GraphView + ?Sized + 'g>(
        self,
    ) -> Box<dyn crate::bitslice::LaneProtocol<G> + 'g> {
        match self {
            // wx-allow(hot-path-alloc): by-name factory like `build`, called once per lane batch
            ProtocolKind::Decay => Box::new(crate::bitslice::LaneDecay::default()),
            // wx-allow(hot-path-alloc): by-name factory like `build`, called once per lane batch
            other => Box::new(crate::bitslice::LaneMirror::new(other.build::<G>())),
        }
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The interface every broadcast protocol implements, generic over the
/// graph backend it broadcasts on (any [`GraphView`]; defaults to the CSR
/// [`Graph`], so `dyn BroadcastProtocol` keeps meaning what it always did).
pub trait BroadcastProtocol<G: GraphView + ?Sized = Graph> {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Called once before a simulation starts; protocols may precompute
    /// whatever they need from the topology (centralized protocols) or just
    /// reset their per-run state.
    fn reset(&mut self, _graph: &G, _source: Vertex) {}

    /// Chooses which informed vertices transmit this round, filling `out`.
    ///
    /// `out` arrives empty, over the graph's vertex universe, and must end up
    /// holding a subset of `view.informed`. Taking the output buffer as a
    /// parameter lets the simulator reuse one [`VertexSet`] from its
    /// [`crate::TrialWorkspace`] for every round of every trial, so the
    /// classical protocols allocate nothing per round.
    fn transmitters_into(&mut self, view: &RoundView<'_, G>, rng: &mut WxRng, out: &mut VertexSet);

    /// Allocating convenience wrapper over
    /// [`BroadcastProtocol::transmitters_into`] (used by tests and one-off
    /// callers; the simulator's hot loop uses the buffer-filling form).
    fn transmitters(&mut self, view: &RoundView<'_, G>, rng: &mut WxRng) -> VertexSet {
        let mut out = VertexSet::empty(view.graph.num_vertices());
        self.transmitters_into(view, rng, &mut out);
        out
    }
}

// A boxed protocol is a protocol, so by-name factories ([`ProtocolKind::build`])
// compose with the generic trial runner in `crate::trials`.
impl<G: GraphView + ?Sized, P: BroadcastProtocol<G> + ?Sized> BroadcastProtocol<G> for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn reset(&mut self, graph: &G, source: Vertex) {
        (**self).reset(graph, source);
    }
    fn transmitters_into(&mut self, view: &RoundView<'_, G>, rng: &mut WxRng, out: &mut VertexSet) {
        (**self).transmitters_into(view, rng, out);
    }
    fn transmitters(&mut self, view: &RoundView<'_, G>, rng: &mut WxRng) -> VertexSet {
        (**self).transmitters(view, rng)
    }
}

/// `true` if informed vertex `v` still has at least one uninformed neighbor
/// — the per-vertex predicate behind [`useful_transmitters`], exposed so
/// allocation-free protocol loops (decay's `only_useful` variant) can test
/// usefulness inline while iterating the informed bitset.
#[inline]
pub fn is_useful_transmitter<G: GraphView + ?Sized>(view: &RoundView<'_, G>, v: usize) -> bool {
    view.graph
        .neighbors_iter(v)
        .any(|u| !view.informed.contains(u))
}

/// Helper shared by protocols: the subset of informed vertices that still
/// have at least one uninformed neighbor (transmitting from anywhere else is
/// pointless).
pub fn useful_transmitters<G: GraphView + ?Sized>(view: &RoundView<'_, G>) -> VertexSet {
    VertexSet::from_iter(
        view.graph.num_vertices(),
        view.informed
            .iter()
            .filter(|&v| is_useful_transmitter(view, v)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::{RadioSimulator, SimulatorConfig};

    #[test]
    fn useful_transmitters_excludes_interior_vertices() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let informed = g.vertex_set([0, 1, 2]);
        let newly = g.vertex_set([2]);
        let view = RoundView {
            graph: &g,
            round: 3,
            source: 0,
            informed: &informed,
            newly_informed: &newly,
        };
        // only vertex 2 has an uninformed neighbor (3)
        assert_eq!(useful_transmitters(&view).to_vec(), vec![2]);
    }

    #[test]
    fn all_protocols_complete_on_a_small_tree() {
        let g = wx_constructions::families::complete_k_ary_tree(2, 4).unwrap();
        let sim = RadioSimulator::new(&g, 0, SimulatorConfig::default());
        for kind in ProtocolKind::ALL {
            let mut p = kind.build();
            let outcome = sim.run(&mut p, 42);
            assert!(
                outcome.completed_at.is_some(),
                "{} did not complete on the binary tree",
                p.name()
            );
        }
    }

    #[test]
    fn protocol_kind_parse_round_trips() {
        for kind in ProtocolKind::ALL {
            assert_eq!(ProtocolKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(
            ProtocolKind::parse("naive"),
            Some(ProtocolKind::NaiveFlooding)
        );
        assert_eq!(
            ProtocolKind::parse("spokesman-schedule"),
            Some(ProtocolKind::Spokesman)
        );
        assert!(ProtocolKind::parse("carrier-pigeon").is_none());
    }
}
