//! Naive flooding: every informed vertex transmits every round.
//!
//! This is the strawman the paper's introduction uses to motivate unique and
//! wireless expansion: on the `C⁺` example it deadlocks after the first
//! round because every uninformed vertex always hears a collision.

use crate::protocols::BroadcastProtocol;
use crate::simulator::RoundView;
use wx_graph::random::WxRng;
use wx_graph::{GraphView, VertexSet};

/// Every informed vertex transmits in every round.
#[derive(Clone, Copy, Debug, Default)]
pub struct NaiveFlooding;

impl<G: GraphView + ?Sized> BroadcastProtocol<G> for NaiveFlooding {
    fn name(&self) -> &'static str {
        "naive-flooding"
    }

    fn transmitters_into(
        &mut self,
        view: &RoundView<'_, G>,
        _rng: &mut WxRng,
        out: &mut VertexSet,
    ) {
        out.copy_from(view.informed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::{RadioSimulator, SimulatorConfig};
    use wx_graph::Graph;

    #[test]
    fn transmits_exactly_the_informed_set() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let informed = g.vertex_set([0, 1]);
        let newly = g.vertex_set([1]);
        let view = RoundView {
            graph: &g,
            round: 0,
            source: 0,
            informed: &informed,
            newly_informed: &newly,
        };
        let mut rng = wx_graph::random::rng_from_seed(0);
        assert_eq!(
            NaiveFlooding.transmitters(&view, &mut rng).to_vec(),
            vec![0, 1]
        );
    }

    #[test]
    fn completes_on_star_but_not_on_double_star() {
        // star: the center is the source; all leaves get the message round 1.
        let star = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let sim = RadioSimulator::new(&star, 0, SimulatorConfig::default());
        assert_eq!(sim.run(&mut NaiveFlooding, 0).completed_at, Some(1));

        // two centers adjacent to the same leaves: starting from an extra
        // vertex attached to both centers, the leaves always hear collisions.
        let mut edges = vec![(4usize, 0usize), (4, 1)];
        for leaf in 2..4 {
            edges.push((0, leaf));
            edges.push((1, leaf));
        }
        let g = Graph::from_edges(5, edges).unwrap();
        let sim = RadioSimulator::new(
            &g,
            4,
            SimulatorConfig {
                max_rounds: 30,
                stop_when_complete: true,
            },
        );
        assert_eq!(sim.run(&mut NaiveFlooding, 0).completed_at, None);
    }
}
