//! Parallel Monte-Carlo trial runner.
//!
//! Randomized protocols (decay) and randomized instances (random relays in
//! the broadcast chain) need many independent trials for meaningful
//! statistics; this module farms them out over rayon with per-trial derived
//! seeds so the ensemble is reproducible regardless of thread scheduling.
//!
//! # Streaming engine
//!
//! All runners share one [`RadioSimulator`] (one BFS per ensemble, cached in
//! the constructor) and one [`TrialWorkspace`] per rayon worker (pulled from
//! the thread-local pool of [`with_thread_workspace`]), so the per-trial
//! work is exactly: reseed, simulate, summarize. [`map_trials`] is the
//! streaming primitive — it hands each trial's constant-size
//! [`TrialOutcome`] plus the workspace holding its trajectory to a caller
//! closure and keeps only what the closure returns, so ensemble memory is
//! O(trials · |summary|), never O(trials · n). [`run_trials`] is the
//! compatibility wrapper that materializes full [`BroadcastOutcome`]s, and
//! [`run_trials_stats`] aggregates completion rounds without materializing
//! any outcome at all.

use crate::bitslice::{
    run_lanes_in, with_thread_lane_workspace, LaneProtocol, LaneWorkspace, MAX_LANES,
};
use crate::metrics::{BroadcastOutcome, EnsembleStats};
use crate::protocols::BroadcastProtocol;
use crate::simulator::{RadioSimulator, SimulatorConfig, TrialOutcome};
use crate::workspace::{with_thread_workspace, TrialWorkspace};
use rayon::prelude::*;
use wx_graph::{GraphView, Vertex};

/// Runs `trials` independent simulations of the protocol produced by
/// `make_protocol` (one fresh instance per trial) on a shared simulator,
/// reducing each trial to whatever `summarize` returns; results come back in
/// trial order.
///
/// `summarize` receives the trial index, the constant-size [`TrialOutcome`],
/// and the worker's [`TrialWorkspace`] still holding the full trajectory
/// (per-round counts, first-informed rounds), so callers can extract exactly
/// the statistics they need without the engine retaining any n-sized
/// per-trial state.
pub fn map_trials<G, P, F, T, S>(
    sim: &RadioSimulator<'_, G>,
    trials: usize,
    base_seed: u64,
    make_protocol: F,
    summarize: S,
) -> Vec<T>
where
    G: GraphView + Sync + ?Sized,
    P: BroadcastProtocol<G>,
    F: Fn() -> P + Sync,
    T: Send,
    S: Fn(usize, &TrialOutcome, &TrialWorkspace) -> T + Sync,
{
    (0..trials)
        .into_par_iter()
        .map(|t| {
            with_thread_workspace(|ws| {
                let mut proto = make_protocol();
                let outcome = sim.run_in(
                    &mut proto,
                    wx_graph::random::derive_seed(base_seed, t as u64),
                    ws,
                );
                summarize(t, &outcome, ws)
            })
        })
        .collect()
}

/// One trial's view into the [`LaneWorkspace`] that ran it, handed to
/// [`map_trials_lanes`] summarize closures — the lane analogue of the
/// `&TrialWorkspace` argument of [`map_trials`], exposing the same
/// per-trajectory queries.
#[derive(Clone, Copy, Debug)]
pub struct LaneTrialView<'a> {
    ws: &'a LaneWorkspace,
    lane: usize,
}

impl LaneTrialView<'_> {
    /// Per-round informed counts of this trial (`[0] == 1`).
    pub fn informed_per_round(&self) -> &[usize] {
        self.ws.lane_informed_per_round(self.lane)
    }

    /// The round at which this trial first informed vertex `v`.
    pub fn first_informed_round(&self, v: Vertex) -> Option<usize> {
        self.ws.lane_first_informed_round(self.lane, v)
    }

    /// Rounds needed to inform at least `fraction` of `reachable` vertices
    /// (mirrors [`TrialWorkspace::rounds_to_reach_fraction`]).
    pub fn rounds_to_reach_fraction(&self, fraction: f64, reachable: usize) -> Option<usize> {
        self.ws
            .lane_rounds_to_reach_fraction(self.lane, fraction, reachable)
    }
}

/// Bit-sliced counterpart of [`map_trials`]: runs `trials` independent
/// simulations in word-parallel batches of up to `lanes` trials each
/// (`lanes ∈ 1..=64`), reducing each trial to whatever `summarize` returns.
///
/// Per-trial seeds are `derive_seed(base_seed, trial)` — the **same**
/// derivation as [`map_trials`] — and every lane is bit-exact against the
/// scalar engine, so summaries are identical to the scalar runner's: results
/// come back in trial order and downstream aggregation (reports, stats) is
/// byte-for-byte unchanged, only faster. Batches are farmed out over rayon
/// with one [`LaneWorkspace`] per worker from the thread-local pool.
pub fn map_trials_lanes<G, P, F, T, S>(
    sim: &RadioSimulator<'_, G>,
    trials: usize,
    base_seed: u64,
    lanes: usize,
    make_protocol: F,
    summarize: S,
) -> Vec<T>
where
    G: GraphView + Sync + ?Sized,
    P: LaneProtocol<G>,
    F: Fn() -> P + Sync,
    T: Send,
    S: Fn(usize, &TrialOutcome, &LaneTrialView<'_>) -> T + Sync,
{
    assert!(
        (1..=MAX_LANES).contains(&lanes),
        "lane width must be 1..=64, got {lanes}"
    );
    let batches = trials.div_ceil(lanes);
    (0..batches)
        .into_par_iter()
        .map(|b| {
            let start = b * lanes;
            let width = lanes.min(trials - start);
            let mut seeds = [0u64; MAX_LANES];
            for (j, s) in seeds[..width].iter_mut().enumerate() {
                *s = wx_graph::random::derive_seed(base_seed, (start + j) as u64);
            }
            with_thread_lane_workspace(|ws| {
                let mut proto = make_protocol();
                run_lanes_in(sim, &mut proto, &seeds[..width], ws);
                (0..width)
                    .map(|lane| {
                        let outcome = ws.lane_outcome(lane);
                        summarize(start + lane, &outcome, &LaneTrialView { ws, lane })
                    })
                    .collect::<Vec<T>>()
            })
        })
        .collect::<Vec<Vec<T>>>()
        .into_iter()
        .flatten()
        .collect()
}

/// Runs `trials` independent simulations of the protocol produced by
/// `make_protocol` (one fresh instance per trial), returning the outcomes in
/// trial order.
///
/// Each returned [`BroadcastOutcome`] carries its full n-sized trajectory;
/// for large ensembles prefer [`map_trials`] (constant-size summaries) or
/// [`run_trials_stats`] (online aggregation).
pub fn run_trials<G, P, F>(
    graph: &G,
    source: Vertex,
    config: &SimulatorConfig,
    trials: usize,
    base_seed: u64,
    make_protocol: F,
) -> Vec<BroadcastOutcome>
where
    G: GraphView + Sync + ?Sized,
    P: BroadcastProtocol<G>,
    F: Fn() -> P + Sync,
{
    let sim = RadioSimulator::new(graph, source, config.clone());
    let protocol_name = make_protocol().name().to_string();
    map_trials(&sim, trials, base_seed, &make_protocol, |_, outcome, ws| {
        sim.outcome_from(&protocol_name, outcome, ws)
    })
}

/// Convenience wrapper returning aggregated statistics directly.
///
/// Streams: only each trial's completion round is retained, so memory is
/// O(trials) machine words regardless of graph size.
pub fn run_trials_stats<G, P, F>(
    graph: &G,
    source: Vertex,
    config: &SimulatorConfig,
    trials: usize,
    base_seed: u64,
    make_protocol: F,
) -> EnsembleStats
where
    G: GraphView + Sync + ?Sized,
    P: BroadcastProtocol<G>,
    F: Fn() -> P + Sync,
{
    let sim = RadioSimulator::new(graph, source, config.clone());
    let completions = map_trials(&sim, trials, base_seed, make_protocol, |_, outcome, _| {
        outcome.completed_at
    });
    EnsembleStats::from_completion_rounds(&completions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::decay::DecayProtocol;
    use crate::protocols::naive::NaiveFlooding;

    #[test]
    fn trials_are_reproducible() {
        let g = wx_constructions::families::random_regular_graph(64, 4, 2).unwrap();
        let cfg = SimulatorConfig::default();
        let a = run_trials(&g, 0, &cfg, 6, 9, DecayProtocol::default);
        let b = run_trials(&g, 0, &cfg, 6, 9, DecayProtocol::default);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.completed_at, y.completed_at);
            assert_eq!(x.informed_per_round, y.informed_per_round);
        }
    }

    #[test]
    fn stats_wrapper_matches_manual_aggregation() {
        let g = wx_constructions::families::grid_graph(5, 5).unwrap();
        let cfg = SimulatorConfig::default();
        let outcomes = run_trials(&g, 0, &cfg, 4, 3, DecayProtocol::default);
        let stats = run_trials_stats(&g, 0, &cfg, 4, 3, DecayProtocol::default);
        assert_eq!(stats.trials, 4);
        assert_eq!(
            stats.completed,
            outcomes.iter().filter(|o| o.completed()).count()
        );
    }

    #[test]
    fn deterministic_protocols_give_identical_trials() {
        let g = wx_constructions::families::complete_k_ary_tree(2, 5).unwrap();
        let cfg = SimulatorConfig::default();
        let outcomes = run_trials(&g, 0, &cfg, 3, 1, || NaiveFlooding);
        let first = outcomes[0].completed_at;
        assert!(outcomes.iter().all(|o| o.completed_at == first));
    }

    #[test]
    fn map_trials_summaries_match_full_outcomes() {
        let g = wx_constructions::families::random_regular_graph(64, 4, 5).unwrap();
        let cfg = SimulatorConfig::default();
        let sim = RadioSimulator::new(&g, 0, cfg.clone());
        let summaries = map_trials(&sim, 5, 17, DecayProtocol::default, |t, outcome, ws| {
            (
                t,
                outcome.completed_at,
                outcome.rounds_simulated,
                ws.rounds_to_reach_fraction(0.5, outcome.reachable),
            )
        });
        let full = run_trials(&g, 0, &cfg, 5, 17, DecayProtocol::default);
        assert_eq!(summaries.len(), 5);
        for (i, (t, completed_at, rounds, half)) in summaries.iter().enumerate() {
            assert_eq!(*t, i);
            assert_eq!(*completed_at, full[i].completed_at);
            assert_eq!(*rounds, full[i].rounds_simulated);
            assert_eq!(*half, full[i].rounds_to_reach_fraction(0.5));
        }
    }

    #[test]
    fn lane_summaries_are_identical_to_scalar_summaries() {
        use crate::bitslice::LaneDecay;
        let g = wx_constructions::families::random_regular_graph(90, 4, 11).unwrap();
        let sim = RadioSimulator::new(&g, 0, SimulatorConfig::default());
        let scalar = map_trials(&sim, 70, 23, DecayProtocol::default, |t, outcome, ws| {
            (
                t,
                *outcome,
                ws.rounds_to_reach_fraction(0.5, outcome.reachable),
                ws.first_informed_round()[89],
            )
        });
        for lanes in [1usize, 8, 64] {
            let sliced = map_trials_lanes(
                &sim,
                70,
                23,
                lanes,
                LaneDecay::default,
                |t, outcome, view| {
                    (
                        t,
                        *outcome,
                        view.rounds_to_reach_fraction(0.5, outcome.reachable),
                        view.first_informed_round(89),
                    )
                },
            );
            assert_eq!(scalar, sliced, "lanes={lanes}");
        }
    }

    #[test]
    fn shared_simulator_does_one_bfs_and_caches_the_target() {
        // the reachable count is computed in the constructor; afterwards it
        // is a field read, identical across all trials
        let g = wx_constructions::families::grid_graph(6, 6).unwrap();
        let sim = RadioSimulator::new(&g, 0, SimulatorConfig::default());
        let targets = map_trials(&sim, 8, 1, DecayProtocol::default, |_, outcome, _| {
            outcome.reachable
        });
        assert!(targets.iter().all(|&r| r == sim.reachable_count()));
    }
}
