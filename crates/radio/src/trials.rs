//! Parallel Monte-Carlo trial runner.
//!
//! Randomized protocols (decay) and randomized instances (random relays in
//! the broadcast chain) need many independent trials for meaningful
//! statistics; this module farms them out over rayon with per-trial derived
//! seeds so the ensemble is reproducible regardless of thread scheduling.

use crate::metrics::{BroadcastOutcome, EnsembleStats};
use crate::protocols::BroadcastProtocol;
use crate::simulator::{RadioSimulator, SimulatorConfig};
use rayon::prelude::*;
use wx_graph::{Graph, Vertex};

/// Runs `trials` independent simulations of the protocol produced by
/// `make_protocol` (one fresh instance per trial), returning the outcomes in
/// trial order.
pub fn run_trials<P, F>(
    graph: &Graph,
    source: Vertex,
    config: &SimulatorConfig,
    trials: usize,
    base_seed: u64,
    make_protocol: F,
) -> Vec<BroadcastOutcome>
where
    P: BroadcastProtocol,
    F: Fn() -> P + Sync,
{
    (0..trials)
        .into_par_iter()
        .map(|t| {
            let sim = RadioSimulator::new(graph, source, config.clone());
            let mut proto = make_protocol();
            sim.run(
                &mut proto,
                wx_graph::random::derive_seed(base_seed, t as u64),
            )
        })
        .collect()
}

/// Convenience wrapper returning aggregated statistics directly.
pub fn run_trials_stats<P, F>(
    graph: &Graph,
    source: Vertex,
    config: &SimulatorConfig,
    trials: usize,
    base_seed: u64,
    make_protocol: F,
) -> EnsembleStats
where
    P: BroadcastProtocol,
    F: Fn() -> P + Sync,
{
    EnsembleStats::from_outcomes(&run_trials(
        graph,
        source,
        config,
        trials,
        base_seed,
        make_protocol,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::decay::DecayProtocol;
    use crate::protocols::naive::NaiveFlooding;

    #[test]
    fn trials_are_reproducible() {
        let g = wx_constructions::families::random_regular_graph(64, 4, 2).unwrap();
        let cfg = SimulatorConfig::default();
        let a = run_trials(&g, 0, &cfg, 6, 9, DecayProtocol::default);
        let b = run_trials(&g, 0, &cfg, 6, 9, DecayProtocol::default);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.completed_at, y.completed_at);
            assert_eq!(x.informed_per_round, y.informed_per_round);
        }
    }

    #[test]
    fn stats_wrapper_matches_manual_aggregation() {
        let g = wx_constructions::families::grid_graph(5, 5).unwrap();
        let cfg = SimulatorConfig::default();
        let outcomes = run_trials(&g, 0, &cfg, 4, 3, DecayProtocol::default);
        let stats = run_trials_stats(&g, 0, &cfg, 4, 3, DecayProtocol::default);
        assert_eq!(stats.trials, 4);
        assert_eq!(
            stats.completed,
            outcomes.iter().filter(|o| o.completed()).count()
        );
    }

    #[test]
    fn deterministic_protocols_give_identical_trials() {
        let g = wx_constructions::families::complete_k_ary_tree(2, 5).unwrap();
        let cfg = SimulatorConfig::default();
        let outcomes = run_trials(&g, 0, &cfg, 3, 1, || NaiveFlooding);
        let first = outcomes[0].completed_at;
        assert!(outcomes.iter().all(|o| o.completed_at == first));
    }
}
