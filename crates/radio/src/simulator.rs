//! The synchronous collision-model simulator.

use crate::metrics::BroadcastOutcome;
use crate::protocols::BroadcastProtocol;
use crate::workspace::TrialWorkspace;
use wx_graph::random::{rng_from_seed, WxRng};
use wx_graph::{Graph, GraphView, Vertex, VertexSet};

/// Read-only view of the simulation state handed to protocols each round.
///
/// Distributed protocols should only consult fields a real processor would
/// know (its own informed status, the round number, global parameters `n`
/// and `D`); centralized schedules (the spokesman broadcast) may use the
/// whole view. The simulator does not police this — the distinction is
/// documented per protocol.
#[derive(Debug)]
pub struct RoundView<'a, G: GraphView + ?Sized = Graph> {
    /// The underlying network (any [`GraphView`] backend).
    pub graph: &'a G,
    /// The current round number (the first round is 0).
    pub round: usize,
    /// The broadcast source.
    pub source: Vertex,
    /// Vertices that currently hold the message.
    pub informed: &'a VertexSet,
    /// Vertices that first received the message in the previous round.
    pub newly_informed: &'a VertexSet,
}

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct SimulatorConfig {
    /// Hard cap on the number of rounds simulated.
    pub max_rounds: usize,
    /// Stop as soon as every vertex reachable from the source is informed.
    pub stop_when_complete: bool,
}

impl Default for SimulatorConfig {
    fn default() -> Self {
        SimulatorConfig {
            max_rounds: 10_000,
            stop_when_complete: true,
        }
    }
}

/// The radio-network simulator.
///
/// Graph and source are fixed per simulator, so the completion target (the
/// number of vertices reachable from the source) is computed **once** at
/// construction and cached — a 10k-trial ensemble on one simulator performs
/// one BFS, not 10k. Use [`RadioSimulator::run`] for a one-off simulation or
/// [`RadioSimulator::run_in`] with a reused [`TrialWorkspace`] for
/// allocation-free ensembles.
pub struct RadioSimulator<'a, G: GraphView + ?Sized = Graph> {
    graph: &'a G,
    source: Vertex,
    config: SimulatorConfig,
    /// Cached number of vertices reachable from `source` (the completion
    /// target); computed by one BFS in the constructor.
    reachable: usize,
}

impl<'a, G: GraphView + ?Sized> RadioSimulator<'a, G> {
    /// Creates a simulator for broadcasting from `source` on `graph`.
    ///
    /// Runs one BFS to determine the completion target; every subsequent
    /// trial reuses the cached count.
    pub fn new(graph: &'a G, source: Vertex, config: SimulatorConfig) -> Self {
        assert!(source < graph.num_vertices(), "source out of range");
        let reachable = reachable_from(graph, source);
        RadioSimulator {
            graph,
            source,
            config,
            reachable,
        }
    }

    /// Creates a simulator with an externally computed reachable count,
    /// skipping the constructor BFS entirely. The caller vouches that
    /// `reachable` is the number of vertices reachable from `source` (a
    /// wrong value only affects completion detection, not safety). Used by
    /// batch drivers that already ran a BFS on the shared graph.
    pub fn with_reachable(
        graph: &'a G,
        source: Vertex,
        config: SimulatorConfig,
        reachable: usize,
    ) -> Self {
        assert!(source < graph.num_vertices(), "source out of range");
        RadioSimulator {
            graph,
            source,
            config,
            reachable,
        }
    }

    /// The number of vertices reachable from the source (the completion
    /// target). Cached at construction — calling this in a loop is free.
    pub fn reachable_count(&self) -> usize {
        self.reachable
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'a G {
        self.graph
    }

    /// The broadcast source.
    pub fn source(&self) -> Vertex {
        self.source
    }

    /// The simulator configuration (round cap and stopping rule) — shared by
    /// the scalar loop and the bit-sliced lane engine in [`crate::bitslice`].
    pub fn config(&self) -> &SimulatorConfig {
        &self.config
    }

    /// Executes one round given the set of transmitters; returns the set of
    /// vertices that receive the message this round (whether or not they
    /// were already informed).
    ///
    /// The collision rule is applied literally: a vertex receives iff it is
    /// not itself transmitting and exactly one neighbor transmits — which is
    /// precisely the unique neighborhood `Γ¹(T)` of the transmitter set, so
    /// this is a thin wrapper over the `wx_graph` neighborhood kernel.
    /// [`RadioSimulator::run`] resolves receivers through a scratch it reuses
    /// across rounds instead of calling this materializing form.
    pub fn step(graph: &G, transmitters: &VertexSet) -> VertexSet {
        wx_graph::neighborhood::unique_neighborhood(graph, transmitters)
    }

    /// Runs the protocol until completion or the round cap, returning the
    /// full outcome. `seed` drives both the protocol's randomness and nothing
    /// else (the simulator itself is deterministic).
    ///
    /// Allocates a fresh [`TrialWorkspace`] per call; ensembles should use
    /// [`RadioSimulator::run_in`] (or the runners in [`crate::trials`]) to
    /// reuse one workspace across trials.
    pub fn run(&self, protocol: &mut dyn BroadcastProtocol<G>, seed: u64) -> BroadcastOutcome {
        let mut ws = TrialWorkspace::new(self.graph.num_vertices());
        let trial = self.run_in(protocol, seed, &mut ws);
        self.outcome_from(protocol.name(), &trial, &ws)
    }

    /// Materializes a full [`BroadcastOutcome`] (per-round trajectory plus
    /// per-vertex first-informed rounds) from the state a
    /// [`RadioSimulator::run_in`] call left in `ws`. `protocol_name` is the
    /// [`BroadcastProtocol::name`] of the protocol that ran.
    pub fn outcome_from(
        &self,
        protocol_name: &str,
        trial: &TrialOutcome,
        ws: &TrialWorkspace,
    ) -> BroadcastOutcome {
        let n = self.graph.num_vertices();
        BroadcastOutcome {
            protocol: protocol_name.to_string(),
            num_vertices: n,
            reachable: trial.reachable,
            completed_at: trial.completed_at,
            rounds_simulated: trial.rounds_simulated,
            informed_per_round: ws.informed_per_round().to_vec(),
            first_informed_round: ws.first_informed_round()[..n].to_vec(),
        }
    }

    /// Runs the protocol until completion or the round cap, reusing the
    /// buffers in `ws` — the streaming trial engine's inner loop.
    ///
    /// After the first call on a given graph size, subsequent calls perform
    /// **no** n-sized allocations: the informed/newly-informed bitsets, the
    /// transmitter buffer, the first-informed array, the per-round counts and
    /// the receiver-resolution scratch all live in the workspace, and the
    /// completion target comes from the BFS cached at construction. Per-trial
    /// setup is a targeted reset proportional to the previous trial's
    /// informed count, plus reseeding the protocol rng.
    ///
    /// The returned [`TrialOutcome`] is a constant-size summary; the full
    /// trajectory remains readable from `ws` (and can be materialized with
    /// [`RadioSimulator::outcome_from`]) until the next run overwrites it.
    pub fn run_in(
        &self,
        protocol: &mut dyn BroadcastProtocol<G>,
        seed: u64,
        ws: &mut TrialWorkspace,
    ) -> TrialOutcome {
        let _span = wx_trace::span("radio.trial");
        let n = self.graph.num_vertices();
        let mut rng: WxRng = rng_from_seed(seed);
        ws.reset(n, self.source);
        let target = self.reachable;
        let mut completed_at = None;

        protocol.reset(self.graph, self.source);

        for round in 0..self.config.max_rounds {
            ws.transmitters.clear();
            let view = RoundView {
                graph: self.graph,
                round,
                source: self.source,
                informed: &ws.informed,
                newly_informed: &ws.newly,
            };
            protocol.transmitters_into(&view, &mut rng, &mut ws.transmitters);
            debug_assert!(
                ws.transmitters.is_subset_of(&ws.informed),
                "protocol {} transmitted from uninformed vertices",
                protocol.name()
            );
            let receivers = ws
                .scratch
                .unique_neighborhood_sorted(self.graph, &ws.transmitters);
            ws.fresh.clear();
            for &v in receivers {
                if ws.informed.insert(v) {
                    ws.fresh.insert(v);
                    ws.first_informed_round[v] = Some(round + 1);
                }
            }
            std::mem::swap(&mut ws.newly, &mut ws.fresh);
            wx_trace::event_value("radio.newly_informed", ws.newly.len() as u64);
            ws.informed_per_round.push(ws.informed.len());
            if ws.informed.len() == target && completed_at.is_none() {
                // record the *first* completion round; with
                // stop_when_complete = false the simulation keeps running but
                // the completion round must not advance with it
                completed_at = Some(round + 1);
                if self.config.stop_when_complete {
                    break;
                }
            }
        }

        // Scheduling-independent work counts: identical values whether the
        // trial ran here or as a bit-lane of the sliced engine.
        let rounds_simulated = ws.informed_per_round.len() - 1;
        wx_trace::count(
            wx_trace::CounterId::RadioRoundsSimulated,
            rounds_simulated as u64,
        );
        wx_trace::count(
            wx_trace::CounterId::RadioInformedFinal,
            ws.informed.len() as u64,
        );
        TrialOutcome {
            reachable: target,
            informed: ws.informed.len(),
            completed_at,
            rounds_simulated,
        }
    }
}

/// The number of vertices reachable from `source` in `graph` (one BFS) —
/// the completion-target definition. [`RadioSimulator::new`] computes it
/// once per simulator; batch drivers that share a graph across many
/// simulators compute it here once and pass it to
/// [`RadioSimulator::with_reachable`].
pub fn reachable_from<G: GraphView + ?Sized>(graph: &G, source: Vertex) -> usize {
    wx_graph::traversal::bfs(graph, source)
        .dist
        .iter()
        .filter(|&&d| d != usize::MAX)
        .count()
}

/// Constant-size summary of one [`RadioSimulator::run_in`] trial — everything
/// an online aggregator needs without materializing the n-sized trajectory
/// vectors of [`BroadcastOutcome`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrialOutcome {
    /// Number of vertices reachable from the source (the completion target).
    pub reachable: usize,
    /// Number of vertices informed when the run stopped.
    pub informed: usize,
    /// The round at which the last reachable vertex became informed, if the
    /// broadcast completed within the round cap.
    pub completed_at: Option<usize>,
    /// Number of rounds actually simulated.
    pub rounds_simulated: usize,
}

impl TrialOutcome {
    /// `true` if every reachable vertex was informed.
    pub fn completed(&self) -> bool {
        self.completed_at.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::naive::NaiveFlooding;
    use crate::protocols::round_robin::RoundRobin;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn step_applies_collision_rule() {
        // star: center 0 with leaves 1..=3
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]).unwrap();
        // single transmitter: all neighbors receive
        let recv = RadioSimulator::step(&g, &g.vertex_set([0]));
        assert_eq!(recv.to_vec(), vec![1, 2, 3]);
        // two leaves transmit: the center hears a collision, nothing received
        let recv = RadioSimulator::step(&g, &g.vertex_set([1, 2]));
        assert!(recv.is_empty());
        // one leaf transmits: only the center receives
        let recv = RadioSimulator::step(&g, &g.vertex_set([1]));
        assert_eq!(recv.to_vec(), vec![0]);
        // a transmitter does not receive even if a neighbor transmits
        let recv = RadioSimulator::step(&g, &g.vertex_set([0, 1]));
        assert_eq!(recv.to_vec(), vec![2, 3]);
    }

    #[test]
    fn naive_flooding_completes_on_a_path() {
        // On a path there are never two informed neighbors of the frontier
        // vertex, so naive flooding advances one hop per round.
        let g = path(6);
        let sim = RadioSimulator::new(&g, 0, SimulatorConfig::default());
        let outcome = sim.run(&mut NaiveFlooding, 1);
        assert_eq!(outcome.completed_at, Some(5));
        assert_eq!(outcome.first_informed_round[5], Some(5));
    }

    #[test]
    fn naive_flooding_stalls_on_c_plus() {
        // The introduction's example: after round 1 the informed set is
        // {s0, x, y}; from round 2 on every clique vertex hears ≥ 2
        // transmitters, so naive flooding never finishes.
        let (g, src) = wx_constructions::families::complete_plus_graph(6).unwrap();
        let sim = RadioSimulator::new(
            &g,
            src,
            SimulatorConfig {
                max_rounds: 50,
                stop_when_complete: true,
            },
        );
        let outcome = sim.run(&mut NaiveFlooding, 1);
        assert_eq!(outcome.completed_at, None);
        assert_eq!(outcome.informed_per_round.last().copied(), Some(3));
    }

    #[test]
    fn round_robin_always_completes() {
        let (g, src) = wx_constructions::families::complete_plus_graph(6).unwrap();
        let sim = RadioSimulator::new(&g, src, SimulatorConfig::default());
        let outcome = sim.run(&mut RoundRobin::default(), 1);
        assert!(outcome.completed_at.is_some());
        assert_eq!(outcome.informed_per_round.last().copied(), Some(7));
    }

    #[test]
    fn unreachable_vertices_do_not_block_completion() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let sim = RadioSimulator::new(&g, 0, SimulatorConfig::default());
        assert_eq!(sim.reachable_count(), 3);
        let outcome = sim.run(&mut NaiveFlooding, 0);
        assert_eq!(outcome.completed_at, Some(2));
        assert!(outcome.first_informed_round[3].is_none());
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn source_must_be_valid() {
        let g = path(3);
        RadioSimulator::new(&g, 3, SimulatorConfig::default());
    }

    #[test]
    fn run_in_matches_run_across_reused_workspace() {
        use crate::protocols::decay::DecayProtocol;
        use crate::workspace::TrialWorkspace;
        let g = wx_constructions::families::random_regular_graph(48, 4, 7).unwrap();
        let sim = RadioSimulator::new(&g, 0, SimulatorConfig::default());
        let mut ws = TrialWorkspace::new(0);
        for seed in 0..6u64 {
            let mut p1 = DecayProtocol::default();
            let mut p2 = DecayProtocol::default();
            let fresh = sim.run(&mut p1, seed);
            let trial = sim.run_in(&mut p2, seed, &mut ws);
            let reused = sim.outcome_from(BroadcastProtocol::<Graph>::name(&p2), &trial, &ws);
            assert_eq!(fresh.completed_at, reused.completed_at);
            assert_eq!(fresh.rounds_simulated, reused.rounds_simulated);
            assert_eq!(fresh.informed_per_round, reused.informed_per_round);
            assert_eq!(fresh.first_informed_round, reused.first_informed_round);
            assert_eq!(
                trial.informed,
                reused.informed_per_round.last().copied().unwrap()
            );
        }
        // the workspace never regrew past the graph size
        assert_eq!(ws.capacity(), 48);
    }

    #[test]
    fn completed_at_records_the_first_completion_round_without_early_stop() {
        // with stop_when_complete = false the simulation keeps running past
        // completion; completed_at must stay pinned to the first completion
        // round instead of advancing with every subsequent full round
        let g = path(4);
        let sim = RadioSimulator::new(
            &g,
            0,
            SimulatorConfig {
                max_rounds: 50,
                stop_when_complete: false,
            },
        );
        let outcome = sim.run(&mut NaiveFlooding, 0);
        assert_eq!(outcome.completed_at, Some(3));
        assert_eq!(outcome.rounds_simulated, 50);
    }

    #[test]
    fn with_reachable_skips_the_bfs_but_behaves_identically() {
        let g = path(6);
        let plain = RadioSimulator::new(&g, 0, SimulatorConfig::default());
        let hinted = RadioSimulator::with_reachable(&g, 0, SimulatorConfig::default(), 6);
        assert_eq!(plain.reachable_count(), hinted.reachable_count());
        let a = plain.run(&mut NaiveFlooding, 1);
        let b = hinted.run(&mut NaiveFlooding, 1);
        assert_eq!(a.completed_at, b.completed_at);
        assert_eq!(a.informed_per_round, b.informed_per_round);
    }
}
