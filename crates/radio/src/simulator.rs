//! The synchronous collision-model simulator.

use crate::metrics::BroadcastOutcome;
use crate::protocols::BroadcastProtocol;
use wx_graph::random::{rng_from_seed, WxRng};
use wx_graph::{Graph, NeighborhoodScratch, Vertex, VertexSet};

/// Read-only view of the simulation state handed to protocols each round.
///
/// Distributed protocols should only consult fields a real processor would
/// know (its own informed status, the round number, global parameters `n`
/// and `D`); centralized schedules (the spokesman broadcast) may use the
/// whole view. The simulator does not police this — the distinction is
/// documented per protocol.
#[derive(Debug)]
pub struct RoundView<'a> {
    /// The underlying network.
    pub graph: &'a Graph,
    /// The current round number (the first round is 0).
    pub round: usize,
    /// The broadcast source.
    pub source: Vertex,
    /// Vertices that currently hold the message.
    pub informed: &'a VertexSet,
    /// Vertices that first received the message in the previous round.
    pub newly_informed: &'a VertexSet,
}

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct SimulatorConfig {
    /// Hard cap on the number of rounds simulated.
    pub max_rounds: usize,
    /// Stop as soon as every vertex reachable from the source is informed.
    pub stop_when_complete: bool,
}

impl Default for SimulatorConfig {
    fn default() -> Self {
        SimulatorConfig {
            max_rounds: 10_000,
            stop_when_complete: true,
        }
    }
}

/// The radio-network simulator.
pub struct RadioSimulator<'a> {
    graph: &'a Graph,
    source: Vertex,
    config: SimulatorConfig,
}

impl<'a> RadioSimulator<'a> {
    /// Creates a simulator for broadcasting from `source` on `graph`.
    pub fn new(graph: &'a Graph, source: Vertex, config: SimulatorConfig) -> Self {
        assert!(source < graph.num_vertices(), "source out of range");
        RadioSimulator {
            graph,
            source,
            config,
        }
    }

    /// The number of vertices reachable from the source (the completion
    /// target).
    pub fn reachable_count(&self) -> usize {
        wx_graph::traversal::bfs(self.graph, self.source)
            .dist
            .iter()
            .filter(|&&d| d != usize::MAX)
            .count()
    }

    /// Executes one round given the set of transmitters; returns the set of
    /// vertices that receive the message this round (whether or not they
    /// were already informed).
    ///
    /// The collision rule is applied literally: a vertex receives iff it is
    /// not itself transmitting and exactly one neighbor transmits — which is
    /// precisely the unique neighborhood `Γ¹(T)` of the transmitter set, so
    /// this is a thin wrapper over the `wx_graph` neighborhood kernel.
    /// [`RadioSimulator::run`] resolves receivers through a scratch it reuses
    /// across rounds instead of calling this materializing form.
    pub fn step(graph: &Graph, transmitters: &VertexSet) -> VertexSet {
        wx_graph::neighborhood::unique_neighborhood(graph, transmitters)
    }

    /// Runs the protocol until completion or the round cap, returning the
    /// full outcome. `seed` drives both the protocol's randomness and nothing
    /// else (the simulator itself is deterministic).
    pub fn run(&self, protocol: &mut dyn BroadcastProtocol, seed: u64) -> BroadcastOutcome {
        let n = self.graph.num_vertices();
        let mut rng: WxRng = rng_from_seed(seed);
        let mut informed = VertexSet::empty(n);
        informed.insert(self.source);
        let mut newly_informed = informed.clone();
        let mut first_informed_round: Vec<Option<usize>> = vec![None; n];
        first_informed_round[self.source] = Some(0);
        let mut informed_per_round = vec![1usize];
        let target = self.reachable_count();
        let mut completed_at = None;
        // one scratch for the whole run: per-round receiver resolution
        // (counting who hears exactly one transmitter) allocates nothing
        let mut scratch = NeighborhoodScratch::new(n);

        protocol.reset(self.graph, self.source);

        for round in 0..self.config.max_rounds {
            let view = RoundView {
                graph: self.graph,
                round,
                source: self.source,
                informed: &informed,
                newly_informed: &newly_informed,
            };
            let transmitters = protocol.transmitters(&view, &mut rng);
            debug_assert!(
                transmitters.is_subset_of(&informed),
                "protocol {} transmitted from uninformed vertices",
                protocol.name()
            );
            let receivers = scratch.unique_neighborhood_sorted(self.graph, &transmitters);
            let mut fresh = VertexSet::empty(n);
            for &v in receivers {
                if informed.insert(v) {
                    fresh.insert(v);
                    first_informed_round[v] = Some(round + 1);
                }
            }
            newly_informed = fresh;
            informed_per_round.push(informed.len());
            if informed.len() == target {
                completed_at = Some(round + 1);
                if self.config.stop_when_complete {
                    break;
                }
            }
        }

        BroadcastOutcome {
            protocol: protocol.name().to_string(),
            num_vertices: n,
            reachable: target,
            completed_at,
            rounds_simulated: informed_per_round.len() - 1,
            informed_per_round,
            first_informed_round,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::naive::NaiveFlooding;
    use crate::protocols::round_robin::RoundRobin;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn step_applies_collision_rule() {
        // star: center 0 with leaves 1..=3
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]).unwrap();
        // single transmitter: all neighbors receive
        let recv = RadioSimulator::step(&g, &g.vertex_set([0]));
        assert_eq!(recv.to_vec(), vec![1, 2, 3]);
        // two leaves transmit: the center hears a collision, nothing received
        let recv = RadioSimulator::step(&g, &g.vertex_set([1, 2]));
        assert!(recv.is_empty());
        // one leaf transmits: only the center receives
        let recv = RadioSimulator::step(&g, &g.vertex_set([1]));
        assert_eq!(recv.to_vec(), vec![0]);
        // a transmitter does not receive even if a neighbor transmits
        let recv = RadioSimulator::step(&g, &g.vertex_set([0, 1]));
        assert_eq!(recv.to_vec(), vec![2, 3]);
    }

    #[test]
    fn naive_flooding_completes_on_a_path() {
        // On a path there are never two informed neighbors of the frontier
        // vertex, so naive flooding advances one hop per round.
        let g = path(6);
        let sim = RadioSimulator::new(&g, 0, SimulatorConfig::default());
        let outcome = sim.run(&mut NaiveFlooding, 1);
        assert_eq!(outcome.completed_at, Some(5));
        assert_eq!(outcome.first_informed_round[5], Some(5));
    }

    #[test]
    fn naive_flooding_stalls_on_c_plus() {
        // The introduction's example: after round 1 the informed set is
        // {s0, x, y}; from round 2 on every clique vertex hears ≥ 2
        // transmitters, so naive flooding never finishes.
        let (g, src) = wx_constructions::families::complete_plus_graph(6).unwrap();
        let sim = RadioSimulator::new(
            &g,
            src,
            SimulatorConfig {
                max_rounds: 50,
                stop_when_complete: true,
            },
        );
        let outcome = sim.run(&mut NaiveFlooding, 1);
        assert_eq!(outcome.completed_at, None);
        assert_eq!(outcome.informed_per_round.last().copied(), Some(3));
    }

    #[test]
    fn round_robin_always_completes() {
        let (g, src) = wx_constructions::families::complete_plus_graph(6).unwrap();
        let sim = RadioSimulator::new(&g, src, SimulatorConfig::default());
        let outcome = sim.run(&mut RoundRobin::default(), 1);
        assert!(outcome.completed_at.is_some());
        assert_eq!(outcome.informed_per_round.last().copied(), Some(7));
    }

    #[test]
    fn unreachable_vertices_do_not_block_completion() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let sim = RadioSimulator::new(&g, 0, SimulatorConfig::default());
        assert_eq!(sim.reachable_count(), 3);
        let outcome = sim.run(&mut NaiveFlooding, 0);
        assert_eq!(outcome.completed_at, Some(2));
        assert!(outcome.first_informed_round[3].is_none());
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn source_must_be_valid() {
        let g = path(3);
        RadioSimulator::new(&g, 3, SimulatorConfig::default());
    }
}
