//! Property-based tests for the Spokesman Election solvers: validity of the
//! returned subsets, honesty of the reported coverage, and the exact solver
//! as ground truth on tiny instances.

use proptest::prelude::*;
use wx_graph::{BipartiteGraph, VertexSet};
use wx_spokesman::{
    ChlamtacWeinsteinSolver, CoverageTracker, DegreeClassSolver, ExactSolver,
    GreedyMinDegreeSolver, LocalSearchSolver, PartitionSolver, PortfolioSolver, RandomDecaySolver,
    SpokesmanSolver,
};

fn bipartite(s: usize, n: usize) -> impl Strategy<Value = BipartiteGraph> {
    prop::collection::vec((0..s, 0..n), 0..(s * n / 2).max(1))
        .prop_map(move |edges| BipartiteGraph::from_edges(s, n, edges).expect("edges are in range"))
}

fn all_solvers() -> Vec<Box<dyn SpokesmanSolver>> {
    vec![
        Box::new(ExactSolver),
        Box::new(RandomDecaySolver::fast()),
        Box::new(PartitionSolver::default()),
        Box::new(PartitionSolver::low_degree_once()),
        Box::new(GreedyMinDegreeSolver),
        Box::new(DegreeClassSolver::default()),
        Box::new(ChlamtacWeinsteinSolver {
            trials_per_level: 2,
        }),
        Box::new(LocalSearchSolver::default()),
        Box::new(PortfolioSolver::fast()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every solver returns a valid subset with honestly computed coverage
    /// that never exceeds the exact optimum, and the optimum itself never
    /// exceeds the number of non-isolated right vertices.
    #[test]
    fn solvers_are_sound_against_the_exact_optimum(g in bipartite(8, 14), seed in 0u64..1000) {
        let (opt, witness) = ExactSolver::optimum(&g);
        prop_assert_eq!(g.unique_coverage(&witness), opt);
        let coverable = (0..g.num_right()).filter(|&w| g.right_degree(w) > 0).count();
        prop_assert!(opt <= coverable);
        for solver in all_solvers() {
            let r = solver.solve(&g, seed);
            prop_assert!(r.subset.iter().all(|u| u < g.num_left()));
            prop_assert_eq!(r.unique_coverage, g.unique_coverage(&r.subset));
            prop_assert!(r.unique_coverage <= opt,
                "{} exceeded the optimum", solver.kind());
        }
    }

    /// Determinism: the deterministic solvers ignore the seed entirely; the
    /// randomized ones are reproducible for a fixed seed.
    #[test]
    fn determinism_contract(g in bipartite(7, 12), seed in 0u64..500) {
        for solver in [&GreedyMinDegreeSolver as &dyn SpokesmanSolver,
                       &PartitionSolver::default(),
                       &DegreeClassSolver::deterministic(3.0)] {
            let a = solver.solve(&g, seed);
            let b = solver.solve(&g, seed.wrapping_add(17));
            prop_assert_eq!(a.unique_coverage, b.unique_coverage,
                "{} is supposed to ignore the seed", solver.kind());
        }
        let r1 = RandomDecaySolver::default().solve(&g, seed);
        let r2 = RandomDecaySolver::default().solve(&g, seed);
        prop_assert_eq!(r1.subset.to_vec(), r2.subset.to_vec());
    }

    /// Monotonicity of the objective itself: adding isolated right vertices
    /// changes nothing; duplicating a right vertex cannot reduce optimal
    /// coverage.
    #[test]
    fn objective_is_stable_under_padding(g in bipartite(6, 10)) {
        let (opt, _) = ExactSolver::optimum(&g);
        // pad with isolated right vertices
        let padded = BipartiteGraph::from_edges(
            g.num_left(),
            g.num_right() + 3,
            g.edges(),
        ).unwrap();
        prop_assert_eq!(ExactSolver::optimum(&padded).0, opt);
        // duplicate right vertex 0 (if it exists): optimum cannot drop
        if g.num_right() > 0 {
            let dup_id = g.num_right();
            let mut edges: Vec<(usize, usize)> = g.edges().collect();
            for &u in g.right_neighbors(0) {
                edges.push((u, dup_id));
            }
            let dup = BipartiteGraph::from_edges(g.num_left(), g.num_right() + 1, edges).unwrap();
            prop_assert!(ExactSolver::optimum(&dup).0 >= opt);
        }
    }

    /// Incremental-delta consistency: over an arbitrary move sequence, the
    /// local-search [`CoverageTracker`]'s O(deg v) delta evaluation and its
    /// maintained coverage agree with a full re-measurement
    /// (`BipartiteGraph::unique_coverage`) after every single flip.
    #[test]
    fn delta_evaluation_agrees_with_full_remeasurement(
        g in bipartite(9, 15),
        moves in prop::collection::vec(0usize..9, 1..60),
        start in prop::collection::btree_set(0usize..9, 0..9),
    ) {
        let start_set = VertexSet::from_iter(g.num_left(), start.iter().copied());
        let mut tracker = CoverageTracker::new(&g, &start_set);
        prop_assert_eq!(tracker.coverage(), g.unique_coverage(&start_set));
        for &u in &moves {
            let was_chosen = tracker.contains(u);
            let before = tracker.coverage() as i64;
            let predicted = tracker.flip_delta(u);
            let applied = tracker.flip(u);
            prop_assert_eq!(predicted, applied);
            prop_assert_eq!(tracker.contains(u), !was_chosen);
            // the maintained coverage matches a from-scratch re-measurement
            let full = g.unique_coverage(tracker.chosen());
            prop_assert_eq!(tracker.coverage(), full,
                "delta path drifted from full re-measurement after flipping {u}");
            prop_assert_eq!(before + applied, full as i64);
        }
    }

    /// The Lemma A.13 guarantee holds for the recursive partition solver on
    /// arbitrary random instances (not just the structured ones in the unit
    /// tests).
    #[test]
    fn partition_meets_lemma_a13_on_arbitrary_instances(g in bipartite(10, 18), seed in 0u64..100) {
        let gamma = (0..g.num_right()).filter(|&w| g.right_degree(w) > 0).count();
        if gamma == 0 {
            return Ok(());
        }
        let delta_n = g.num_edges() as f64 / gamma as f64;
        let guarantee = wx_spokesman::bounds::lemma_a_13_guarantee(gamma, delta_n);
        let r = PartitionSolver::default().solve(&g, seed);
        prop_assert!(r.unique_coverage as f64 >= guarantee.floor(),
            "coverage {} below Lemma A.13 guarantee {guarantee}", r.unique_coverage);
    }
}
