//! Local-search refinement for Spokesman Election solutions.
//!
//! The paper's solvers (decay sampling, Procedure Partition, degree classes)
//! all produce a subset `S'` with a *guaranteed* unique coverage; none of
//! them is locally optimal. [`LocalSearchImprover`] takes any starting subset
//! and greedily applies single-vertex flips (add or remove one vertex of `S`)
//! while they strictly increase `|Γ¹_S(S')|`. This is the natural
//! "polish the certificate" step for the experiment harnesses: it never
//! hurts, terminates after at most `|N|` improving flips, and in practice
//! closes most of the gap to the exact optimum on small instances.
//!
//! Flip deltas are evaluated incrementally (O(deg v) per probe, no full
//! re-measurement) through the shared [`CoverageTracker`] counter kernel.
//!
//! The improver is also exposed as a standalone [`SpokesmanSolver`]
//! ([`LocalSearchSolver`]) that starts from the output of an inner solver
//! (greedy by default).

use crate::delta::CoverageTracker;
use crate::solver::{SolverKind, SpokesmanResult, SpokesmanSolver};
use wx_graph::{BipartiteGraph, VertexSet};

/// Greedy single-flip local search over subsets of the left side.
#[derive(Clone, Copy, Debug)]
pub struct LocalSearchImprover {
    /// Upper bound on the number of improving flips (a safety valve; the
    /// coverage strictly increases per flip so `|N|` always suffices).
    pub max_flips: usize,
}

impl Default for LocalSearchImprover {
    fn default() -> Self {
        LocalSearchImprover { max_flips: 100_000 }
    }
}

impl LocalSearchImprover {
    /// Improves `subset` by single-vertex flips until no flip strictly
    /// increases the unique coverage. Returns the improved subset and its
    /// coverage.
    ///
    /// Flips are evaluated and applied incrementally through a
    /// [`CoverageTracker`], so probing a flip costs O(deg u) rather than a
    /// full re-measurement of `|Γ¹_S(S')|`.
    pub fn improve(&self, g: &BipartiteGraph, subset: &VertexSet) -> (VertexSet, usize) {
        let _span = wx_trace::span("spokesman.local_search");
        let mut tracker = CoverageTracker::new(g, subset);
        let mut flips = 0usize;
        let mut rejected = 0u64;
        let mut improved = true;
        wx_trace::event_value("spokesman.coverage", tracker.coverage() as u64);
        while improved && flips < self.max_flips {
            improved = false;
            for u in 0..g.num_left() {
                if tracker.flip_delta(u) > 0 {
                    tracker.flip(u);
                    improved = true;
                    flips += 1;
                    // the best-so-far trajectory: one structured event per
                    // accepted flip (coverage strictly increases, so this is
                    // the curve an anytime racer would race against)
                    wx_trace::event_value("spokesman.coverage", tracker.coverage() as u64);
                    if flips >= self.max_flips {
                        break;
                    }
                } else {
                    rejected += 1;
                }
            }
        }
        wx_trace::count(wx_trace::CounterId::SpokesmanFlipsAccepted, flips as u64);
        wx_trace::count(wx_trace::CounterId::SpokesmanFlipsRejected, rejected);
        let (current, coverage) = tracker.into_parts();
        debug_assert_eq!(coverage, g.unique_coverage(&current));
        (current, coverage)
    }
}

/// A solver that runs one or more inner solvers and polishes each of their
/// subsets with [`LocalSearchImprover`], keeping the best polished result.
///
/// Multi-start matters: single-flip local search gets stuck in local optima,
/// and the cheapest way out is a handful of structurally different starting
/// points rather than a smarter neighborhood.
pub struct LocalSearchSolver {
    starts: Vec<Box<dyn SpokesmanSolver + Send + Sync>>,
    improver: LocalSearchImprover,
}

impl Default for LocalSearchSolver {
    fn default() -> Self {
        LocalSearchSolver {
            starts: vec![
                Box::new(crate::greedy::GreedyMinDegreeSolver),
                Box::new(crate::partition::PartitionSolver::default()),
                Box::new(crate::random_decay::RandomDecaySolver::default()),
            ],
            improver: LocalSearchImprover::default(),
        }
    }
}

impl LocalSearchSolver {
    /// Wraps an explicit inner solver (single start).
    pub fn wrapping(inner: Box<dyn SpokesmanSolver + Send + Sync>) -> Self {
        LocalSearchSolver {
            starts: vec![inner],
            improver: LocalSearchImprover::default(),
        }
    }
}

impl SpokesmanSolver for LocalSearchSolver {
    fn kind(&self) -> SolverKind {
        // Reported under the kind of the inner solver's family would be
        // confusing; local search is its own portfolio member.
        SolverKind::Portfolio
    }

    fn solve(&self, g: &BipartiteGraph, seed: u64) -> SpokesmanResult {
        let mut best: Option<SpokesmanResult> = None;
        for (i, inner) in self.starts.iter().enumerate() {
            let start = inner.solve(g, wx_graph::random::derive_seed(seed, i as u64));
            let (subset, _) = self.improver.improve(g, &start.subset);
            let polished = SpokesmanResult::from_subset(SolverKind::Portfolio, g, subset);
            best = Some(match best {
                None => polished,
                Some(b) => b.better_of(polished),
            });
        }
        best.unwrap_or_else(|| {
            SpokesmanResult::from_subset(SolverKind::Portfolio, g, VertexSet::empty(g.num_left()))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactSolver;
    use rand::Rng;

    fn random_instance(seed: u64, s: usize, n: usize, p: f64) -> BipartiteGraph {
        let mut rng = wx_graph::random::rng_from_seed(seed);
        let mut edges = Vec::new();
        for u in 0..s {
            for w in 0..n {
                if rng.gen_bool(p) {
                    edges.push((u, w));
                }
            }
        }
        BipartiteGraph::from_edges(s, n, edges).unwrap()
    }

    #[test]
    fn improvement_never_decreases_coverage() {
        for seed in 0..20u64 {
            let g = random_instance(seed, 12, 24, 0.3);
            let start = crate::greedy::GreedyMinDegreeSolver.solve(&g, seed);
            let (improved, cov) = LocalSearchImprover::default().improve(&g, &start.subset);
            assert!(cov >= start.unique_coverage, "seed {seed}");
            assert_eq!(cov, g.unique_coverage(&improved));
        }
    }

    #[test]
    fn local_optimum_has_no_improving_flip() {
        let g = random_instance(3, 10, 18, 0.35);
        let (subset, cov) =
            LocalSearchImprover::default().improve(&g, &VertexSet::empty(g.num_left()));
        for u in 0..g.num_left() {
            let mut flipped = subset.clone();
            if !flipped.remove(u) {
                flipped.insert(u);
            }
            assert!(
                g.unique_coverage(&flipped) <= cov,
                "flipping {u} improves a 'local optimum'"
            );
        }
    }

    #[test]
    fn often_reaches_the_exact_optimum_on_small_instances() {
        let mut hits = 0usize;
        let trials = 15u64;
        for seed in 0..trials {
            let g = random_instance(100 + seed, 10, 16, 0.3);
            let (opt, _) = ExactSolver::optimum(&g);
            let r = LocalSearchSolver::default().solve(&g, seed);
            assert!(r.unique_coverage <= opt);
            if r.unique_coverage == opt {
                hits += 1;
            }
        }
        // Single-flip local search gets stuck in local optima on some
        // instances; matching the true optimum on a large minority of random
        // instances is the realistic expectation.
        assert!(
            hits as f64 >= 0.4 * trials as f64,
            "local search matched the optimum only {hits}/{trials} times"
        );
    }

    #[test]
    fn starting_from_empty_set_still_finds_something() {
        let g = random_instance(7, 8, 20, 0.25);
        let (subset, cov) =
            LocalSearchImprover::default().improve(&g, &VertexSet::empty(g.num_left()));
        if g.num_edges() > 0 {
            assert!(cov > 0);
            assert!(!subset.is_empty());
        }
    }

    #[test]
    fn tracing_records_a_nondecreasing_coverage_trajectory() {
        // Own the process-global tracer for the whole record+drain window.
        let _session = wx_trace::exclusive();
        let _ = wx_trace::take_trace();
        wx_trace::enable();
        // Run on a dedicated thread: its events carry a unique tid, so
        // concurrent tests that also emit coverage events while tracing is
        // enabled cannot pollute the trajectory we assert on.
        let cov = std::thread::spawn(|| {
            wx_trace::event_value("spokesman.trajectory_test", 0);
            let g = random_instance(5, 12, 30, 0.3);
            let (_, cov) =
                LocalSearchImprover::default().improve(&g, &VertexSet::empty(g.num_left()));
            cov
        })
        .join()
        .unwrap();
        wx_trace::disable();
        let trace = wx_trace::take_trace();
        let tid = trace
            .events
            .iter()
            .find(|e| e.name == "spokesman.trajectory_test")
            .expect("marker event recorded")
            .tid;
        let trajectory: Vec<u64> = trace
            .events
            .iter()
            .filter(|e| e.tid == tid && e.name == "spokesman.coverage")
            .map(|e| e.value)
            .collect();
        // one point at the start plus one per accepted flip, strictly
        // climbing to the final coverage — the anytime best-so-far curve
        assert!(trajectory.len() >= 2, "{trajectory:?}");
        assert_eq!(trajectory[0], 0, "starts from the empty subset");
        assert!(
            trajectory.windows(2).all(|w| w[0] < w[1]),
            "coverage trajectory not strictly increasing: {trajectory:?}"
        );
        assert_eq!(*trajectory.last().unwrap(), cov as u64);
        // the surrounding span was recorded too
        assert!(trace.phase_count("spokesman.local_search") >= 1);
    }

    #[test]
    fn flip_budget_is_respected() {
        let g = random_instance(9, 12, 30, 0.4);
        let improver = LocalSearchImprover { max_flips: 1 };
        let (_, cov_limited) = improver.improve(&g, &VertexSet::empty(g.num_left()));
        let (_, cov_full) =
            LocalSearchImprover::default().improve(&g, &VertexSet::empty(g.num_left()));
        assert!(cov_full >= cov_limited);
    }
}
