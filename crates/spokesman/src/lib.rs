//! # wx-spokesman
//!
//! Solvers for the **Spokesman Election problem** (Chlamtac–Weinstein, and
//! Section 4.2.1 of *Wireless Expanders*): given a bipartite graph
//! `G_S = (S, N, E)`, find a subset `S' ⊆ S` maximizing the number of
//! vertices of `N` with *exactly one* neighbor in `S'` (the unique coverage
//! `|Γ¹_S(S')|`).
//!
//! The problem is NP-hard in general [Chlamtac–Kutten], so this crate offers
//! a portfolio of solvers with different guarantees, matching the algorithms
//! analysed in the paper:
//!
//! | Solver | Paper source | Guarantee |
//! |--------|--------------|-----------|
//! | [`exact::ExactSolver`] | — | optimal, `O(2^{\|S\|})`, small instances only |
//! | [`random_decay::RandomDecaySolver`] | Lemmas 4.2 & 4.3 | `Ω(\|N\| / log(2·min{δ_N, δ_S}))` in expectation |
//! | [`partition::PartitionSolver`] | Appendix A.1.2–A.2.1 (Procedure Partition) | `≥ \|N\|/(9·log 2δ_N)` deterministically |
//! | [`greedy::GreedyMinDegreeSolver`] | Lemma A.1 | `≥ \|N\|/Δ_S` deterministically |
//! | [`degree_class::DegreeClassSolver`] | Lemmas A.5–A.7 | `≥ 0.20087·\|N\|/log₂Δ` (with the optimal base `c ≈ 3.59`) |
//! | [`chlamtac_weinstein::ChlamtacWeinsteinSolver`] | \[7\] (baseline) | `≥ \|N\|/log \|S\|` |
//! | [`solver::PortfolioSolver`] | — | best of all of the above |
//!
//! Every solver returns a [`SpokesmanResult`] containing the chosen subset,
//! its unique coverage, and the solver that produced it, so results are
//! directly comparable in experiment E7/E10 harnesses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod bounds;
pub mod chlamtac_weinstein;
pub mod degree_class;
pub mod delta;
pub mod exact;
pub mod greedy;
pub mod local_search;
pub mod partition;
pub mod random_decay;
pub mod solver;

pub use artifact::SolutionArtifact;
pub use solver::{PortfolioSolver, SolverKind, SpokesmanResult, SpokesmanSolver};

pub use chlamtac_weinstein::ChlamtacWeinsteinSolver;
pub use degree_class::DegreeClassSolver;
pub use delta::CoverageTracker;
pub use exact::ExactSolver;
pub use greedy::GreedyMinDegreeSolver;
pub use local_search::{LocalSearchImprover, LocalSearchSolver};
pub use partition::PartitionSolver;
pub use random_decay::RandomDecaySolver;
