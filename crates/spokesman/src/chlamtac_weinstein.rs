//! The Chlamtac–Weinstein-style baseline (reference \[7\] of the paper).
//!
//! The original wave-expansion approach computes a subset `S' ⊆ S` with
//! `|Γ¹(S')| ≥ |N| / log|S|`, i.e. its loss factor is logarithmic in the
//! *size of S* rather than in the average degree. We implement the natural
//! randomized counterpart — a size-based halving sweep: for every level
//! `i = 0, 1, …, ⌈log₂|S|⌉` sample each left vertex with probability `2^{-i}`
//! and keep the best sample. For any set `S` there is a level at which the
//! expected number of sampled vertices adjacent to a fixed right vertex is
//! `Θ(1)`, giving the `|N|/log|S|` guarantee in expectation.
//!
//! This solver exists as the *comparison point* for experiment E7: the
//! paper's refined solvers ([`crate::RandomDecaySolver`],
//! [`crate::PartitionSolver`]) replace the `log|S|` loss with
//! `log(2·min{δ_N, δ_S})`, which is never worse and is much better on
//! low-average-degree instances with a large left side.

use crate::solver::{SolverKind, SpokesmanResult, SpokesmanSolver};
use rand::Rng;
use wx_graph::random::{derive_seed, rng_from_seed};
use wx_graph::{BipartiteGraph, VertexSet};

/// Size-based halving baseline in the spirit of Chlamtac–Weinstein \[7\].
#[derive(Clone, Copy, Debug)]
pub struct ChlamtacWeinsteinSolver {
    /// Independent samples per halving level.
    pub trials_per_level: usize,
}

impl Default for ChlamtacWeinsteinSolver {
    fn default() -> Self {
        ChlamtacWeinsteinSolver {
            trials_per_level: 8,
        }
    }
}

impl ChlamtacWeinsteinSolver {
    /// The guarantee of the baseline: `|N⁺| / log₂(2|S|)` where `N⁺` counts
    /// the non-isolated right vertices.
    pub fn guarantee(g: &BipartiteGraph) -> f64 {
        let gamma = (0..g.num_right())
            .filter(|&w| g.right_degree(w) > 0)
            .count();
        let s = g.num_left().max(1);
        gamma as f64 / (2.0 * s as f64).log2().max(1.0)
    }
}

impl SpokesmanSolver for ChlamtacWeinsteinSolver {
    fn kind(&self) -> SolverKind {
        SolverKind::ChlamtacWeinstein
    }

    fn solve(&self, g: &BipartiteGraph, seed: u64) -> SpokesmanResult {
        if g.num_left() == 0 || g.num_edges() == 0 {
            return SpokesmanResult::from_subset(
                SolverKind::ChlamtacWeinstein,
                g,
                VertexSet::empty(g.num_left()),
            );
        }
        let levels = (2.0 * g.num_left() as f64).log2().ceil().max(1.0) as u32;
        let mut best_cov = 0usize;
        let mut best_subset = VertexSet::empty(g.num_left());
        for i in 0..=levels {
            let p = 0.5f64.powi(i as i32);
            for t in 0..self.trials_per_level {
                let mut rng = rng_from_seed(derive_seed(seed, ((i as u64) << 32) | t as u64));
                let sample = VertexSet::from_iter(
                    g.num_left(),
                    (0..g.num_left()).filter(|_| rng.gen_bool(p)),
                );
                let cov = g.unique_coverage(&sample);
                if cov > best_cov {
                    best_cov = cov;
                    best_subset = sample;
                }
            }
        }
        let _ = best_cov;
        SpokesmanResult::from_subset(SolverKind::ChlamtacWeinstein, g, best_subset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_instance(seed: u64, s: usize, n: usize, p: f64) -> BipartiteGraph {
        let mut rng = rng_from_seed(seed);
        let mut edges = Vec::new();
        for u in 0..s {
            for w in 0..n {
                if rng.gen_bool(p) {
                    edges.push((u, w));
                }
            }
        }
        BipartiteGraph::from_edges(s, n, edges).unwrap()
    }

    #[test]
    fn star_covered() {
        let g = BipartiteGraph::from_edges(1, 3, (0..3).map(|w| (0, w))).unwrap();
        let r = ChlamtacWeinsteinSolver::default().solve(&g, 0);
        assert_eq!(r.unique_coverage, 3);
    }

    #[test]
    fn meets_its_own_guarantee_on_random_instances() {
        for seed in 0..12u64 {
            let g = random_instance(seed, 16, 24, 0.3);
            if g.num_edges() == 0 {
                continue;
            }
            let guarantee = ChlamtacWeinsteinSolver::guarantee(&g);
            let r = ChlamtacWeinsteinSolver::default().solve(&g, seed);
            assert!(
                r.unique_coverage as f64 >= guarantee.floor(),
                "seed {seed}: coverage {} below |N|/log|S| guarantee {guarantee:.2}",
                r.unique_coverage
            );
        }
    }

    #[test]
    fn reproducible_for_fixed_seed() {
        let g = random_instance(2, 10, 20, 0.25);
        let a = ChlamtacWeinsteinSolver::default().solve(&g, 5);
        let b = ChlamtacWeinsteinSolver::default().solve(&g, 5);
        assert_eq!(a.unique_coverage, b.unique_coverage);
    }

    #[test]
    fn degenerate_instances() {
        let g = BipartiteGraph::from_edges(0, 0, []).unwrap();
        assert_eq!(
            ChlamtacWeinsteinSolver::default()
                .solve(&g, 0)
                .unique_coverage,
            0
        );
        let g = BipartiteGraph::from_edges(2, 2, []).unwrap();
        assert_eq!(
            ChlamtacWeinsteinSolver::default()
                .solve(&g, 0)
                .unique_coverage,
            0
        );
    }
}
