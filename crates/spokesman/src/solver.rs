//! The common solver interface, result type and the best-of portfolio.

use serde::{Deserialize, Serialize};
use wx_graph::{BipartiteGraph, GraphView, VertexSet};

/// Identifies which algorithm produced a [`SpokesmanResult`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SolverKind {
    /// Brute-force optimum over all subsets of `S`.
    Exact,
    /// The randomized decay-style sampler of Lemmas 4.2 / 4.3.
    RandomDecay,
    /// Procedure Partition (Appendix A.1.2) with the recursive refinement of
    /// Lemma A.13.
    Partition,
    /// The naive minimum-degree greedy procedure of Lemma A.1.
    GreedyMinDegree,
    /// The degree-class solver of Lemmas A.5–A.7.
    DegreeClass,
    /// The Chlamtac–Weinstein-style baseline achieving `|N|/log|S|`.
    ChlamtacWeinstein,
    /// The best result among a portfolio of solvers.
    Portfolio,
}

impl SolverKind {
    /// Every polynomial-time solver kind (the exact solver is excluded: it
    /// is exponential and only feasible for `|S| ≤ ExactSolver::MAX_LEFT`).
    pub const POLYNOMIAL: [SolverKind; 6] = [
        SolverKind::RandomDecay,
        SolverKind::Partition,
        SolverKind::GreedyMinDegree,
        SolverKind::DegreeClass,
        SolverKind::ChlamtacWeinstein,
        SolverKind::Portfolio,
    ];

    /// Parses a solver's display name (case-insensitive).
    pub fn parse(s: &str) -> Option<SolverKind> {
        match s.to_ascii_lowercase().as_str() {
            "exact" => Some(SolverKind::Exact),
            "random-decay" | "decay" => Some(SolverKind::RandomDecay),
            "partition" => Some(SolverKind::Partition),
            "greedy-min-degree" | "greedy" => Some(SolverKind::GreedyMinDegree),
            "degree-class" => Some(SolverKind::DegreeClass),
            "chlamtac-weinstein" => Some(SolverKind::ChlamtacWeinstein),
            "portfolio" => Some(SolverKind::Portfolio),
            _ => None,
        }
    }

    /// Builds a default-configured instance of the solver this kind names —
    /// the by-name factory declarative callers (scenario specs, CLI flags)
    /// use. Note [`SolverKind::Exact`] yields the exponential brute-force
    /// solver, which panics on instances with more than
    /// [`crate::ExactSolver::MAX_LEFT`] left vertices.
    pub fn build(self) -> Box<dyn SpokesmanSolver + Send + Sync> {
        match self {
            SolverKind::Exact => Box::new(crate::exact::ExactSolver),
            SolverKind::RandomDecay => Box::new(crate::random_decay::RandomDecaySolver::default()),
            SolverKind::Partition => Box::new(crate::partition::PartitionSolver::default()),
            SolverKind::GreedyMinDegree => Box::new(crate::greedy::GreedyMinDegreeSolver),
            SolverKind::DegreeClass => Box::new(crate::degree_class::DegreeClassSolver::default()),
            SolverKind::ChlamtacWeinstein => {
                Box::new(crate::chlamtac_weinstein::ChlamtacWeinsteinSolver::default())
            }
            SolverKind::Portfolio => Box::new(PortfolioSolver::default()),
        }
    }
}

impl std::fmt::Display for SolverKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            SolverKind::Exact => "exact",
            SolverKind::RandomDecay => "random-decay",
            SolverKind::Partition => "partition",
            SolverKind::GreedyMinDegree => "greedy-min-degree",
            SolverKind::DegreeClass => "degree-class",
            SolverKind::ChlamtacWeinstein => "chlamtac-weinstein",
            SolverKind::Portfolio => "portfolio",
        };
        write!(f, "{name}")
    }
}

/// The outcome of a spokesman-election solve: a subset `S' ⊆ S` and the size
/// of its `S`-excluding unique neighborhood `|Γ¹_S(S')|`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpokesmanResult {
    /// Which solver produced this result.
    pub solver: SolverKind,
    /// The chosen subset of the left side (indices into `0..g.num_left()`).
    #[serde(skip)]
    pub subset: VertexSet,
    /// `|Γ¹_S(S')|`: number of right vertices with exactly one neighbor in
    /// the subset.
    pub unique_coverage: usize,
    /// The size of the chosen subset.
    pub subset_size: usize,
}

impl SpokesmanResult {
    /// Builds a result from a subset, computing its unique coverage.
    pub fn from_subset(solver: SolverKind, g: &BipartiteGraph, subset: VertexSet) -> Self {
        let unique_coverage = g.unique_coverage(&subset);
        let subset_size = subset.len();
        SpokesmanResult {
            solver,
            subset,
            unique_coverage,
            subset_size,
        }
    }

    /// The achieved fraction of `N` that is uniquely covered,
    /// `|Γ¹_S(S')| / |N|` (0.0 when `N` is empty).
    pub fn coverage_fraction(&self, g: &BipartiteGraph) -> f64 {
        if g.num_right() == 0 {
            0.0
        } else {
            self.unique_coverage as f64 / g.num_right() as f64
        }
    }

    /// The wireless-expansion certificate this result provides for the
    /// underlying set `S`: `|Γ¹_S(S')| / |S|` (infinity when `S` is empty).
    pub fn expansion_certificate(&self, g: &BipartiteGraph) -> f64 {
        if g.num_left() == 0 {
            f64::INFINITY
        } else {
            self.unique_coverage as f64 / g.num_left() as f64
        }
    }

    /// Returns whichever of two results has the larger unique coverage
    /// (ties keep `self`).
    pub fn better_of(self, other: SpokesmanResult) -> SpokesmanResult {
        if other.unique_coverage > self.unique_coverage {
            other
        } else {
            self
        }
    }
}

/// The common interface implemented by every spokesman-election algorithm.
pub trait SpokesmanSolver {
    /// A short human-readable name for reports.
    fn kind(&self) -> SolverKind;

    /// Computes a subset `S' ⊆ S` of the left side of `g` together with its
    /// unique coverage. `seed` drives any internal randomness; deterministic
    /// solvers ignore it.
    fn solve(&self, g: &BipartiteGraph, seed: u64) -> SpokesmanResult;

    /// Solves the Spokesman Election problem for a set `S` living in **any**
    /// graph backend `G: GraphView` — CSR graphs, zero-copy
    /// [`wx_graph::SubgraphView`]s or unmaterialized
    /// [`wx_graph::ImplicitGraph`] families alike.
    ///
    /// The bipartite view `G_S = (S, Γ⁻(S))` is extracted through the
    /// epoch-stamped neighborhood kernel and handed to
    /// [`SpokesmanSolver::solve`]; the returned subset is translated back to
    /// the original vertex ids of `g` (its `unique_coverage` refers to
    /// `Γ¹_S(S')` in `g`, unchanged by the translation).
    fn solve_in_graph<G: GraphView + ?Sized>(
        &self,
        g: &G,
        s: &VertexSet,
        seed: u64,
    ) -> SpokesmanResult
    where
        Self: Sized,
    {
        let (bip, left_ids, _right_ids) = BipartiteGraph::from_set_in_graph(g, s);
        let mut result = self.solve(&bip, seed);
        result.subset =
            VertexSet::from_iter(g.num_vertices(), result.subset.iter().map(|i| left_ids[i]));
        result
    }
}

/// Runs several solvers and keeps the best result.
///
/// The default portfolio contains every polynomial-time solver in this crate
/// (the exact solver is excluded because it is exponential); it is the
/// recommended way to obtain a strong lower-bound certificate on the wireless
/// expansion of a set.
pub struct PortfolioSolver {
    solvers: Vec<Box<dyn SpokesmanSolver + Send + Sync>>,
}

impl Default for PortfolioSolver {
    fn default() -> Self {
        PortfolioSolver {
            solvers: vec![
                Box::new(crate::random_decay::RandomDecaySolver::default()),
                Box::new(crate::partition::PartitionSolver::default()),
                Box::new(crate::greedy::GreedyMinDegreeSolver),
                Box::new(crate::degree_class::DegreeClassSolver::default()),
                Box::new(crate::chlamtac_weinstein::ChlamtacWeinsteinSolver::default()),
                // single-start polish: the portfolio already runs partition
                // and decay directly, so re-running them as local-search
                // starts (the multi-start default) would double their cost
                Box::new(crate::local_search::LocalSearchSolver::wrapping(Box::new(
                    crate::greedy::GreedyMinDegreeSolver,
                ))),
            ],
        }
    }
}

impl PortfolioSolver {
    /// A portfolio with an explicit solver list.
    pub fn new(solvers: Vec<Box<dyn SpokesmanSolver + Send + Sync>>) -> Self {
        PortfolioSolver { solvers }
    }

    /// A cheap portfolio (greedy + partition only) for inner loops where the
    /// randomized solvers would dominate runtime.
    pub fn fast() -> Self {
        PortfolioSolver {
            solvers: vec![
                Box::new(crate::partition::PartitionSolver::default()),
                Box::new(crate::greedy::GreedyMinDegreeSolver),
            ],
        }
    }

    /// Number of solvers in the portfolio.
    pub fn len(&self) -> usize {
        self.solvers.len()
    }

    /// `true` if the portfolio contains no solvers.
    pub fn is_empty(&self) -> bool {
        self.solvers.is_empty()
    }

    /// Runs every solver and returns all results (in portfolio order).
    pub fn solve_all(&self, g: &BipartiteGraph, seed: u64) -> Vec<SpokesmanResult> {
        self.solvers
            .iter()
            .enumerate()
            .map(|(i, s)| s.solve(g, wx_graph::random::derive_seed(seed, i as u64)))
            .collect()
    }
}

impl SpokesmanSolver for PortfolioSolver {
    fn kind(&self) -> SolverKind {
        SolverKind::Portfolio
    }

    fn solve(&self, g: &BipartiteGraph, seed: u64) -> SpokesmanResult {
        let mut best: Option<SpokesmanResult> = None;
        for r in self.solve_all(g, seed) {
            best = Some(match best {
                None => r,
                Some(b) => b.better_of(r),
            });
        }
        let mut best = best.unwrap_or_else(|| {
            SpokesmanResult::from_subset(SolverKind::Portfolio, g, VertexSet::empty(g.num_left()))
        });
        best.solver = SolverKind::Portfolio;
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star_instance() -> BipartiteGraph {
        // one left vertex connected to 4 right vertices
        BipartiteGraph::from_edges(1, 4, (0..4).map(|w| (0, w))).unwrap()
    }

    #[test]
    fn result_from_subset_computes_coverage() {
        let g = star_instance();
        let r = SpokesmanResult::from_subset(SolverKind::Exact, &g, VertexSet::from_iter(1, [0]));
        assert_eq!(r.unique_coverage, 4);
        assert_eq!(r.subset_size, 1);
        assert!((r.coverage_fraction(&g) - 1.0).abs() < 1e-12);
        assert!((r.expansion_certificate(&g) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn better_of_prefers_larger_coverage() {
        let g = star_instance();
        let empty = SpokesmanResult::from_subset(SolverKind::Exact, &g, VertexSet::empty(1));
        let full =
            SpokesmanResult::from_subset(SolverKind::Exact, &g, VertexSet::from_iter(1, [0]));
        assert_eq!(empty.clone().better_of(full.clone()).unique_coverage, 4);
        assert_eq!(full.clone().better_of(empty).unique_coverage, 4);
    }

    #[test]
    fn portfolio_runs_and_labels_result() {
        let g = star_instance();
        let p = PortfolioSolver::default();
        assert!(!p.is_empty());
        let r = p.solve(&g, 1);
        assert_eq!(r.solver, SolverKind::Portfolio);
        assert_eq!(r.unique_coverage, 4);
        let all = p.solve_all(&g, 1);
        assert_eq!(all.len(), p.len());
    }

    #[test]
    fn fast_portfolio_is_smaller() {
        assert!(PortfolioSolver::fast().len() < PortfolioSolver::default().len());
    }

    #[test]
    fn solver_kind_display_names() {
        assert_eq!(SolverKind::RandomDecay.to_string(), "random-decay");
        assert_eq!(SolverKind::Partition.to_string(), "partition");
        assert_eq!(SolverKind::Exact.to_string(), "exact");
    }

    #[test]
    fn solver_kind_parse_and_build_round_trip() {
        let g = star_instance();
        for kind in SolverKind::POLYNOMIAL {
            assert_eq!(SolverKind::parse(&kind.to_string()), Some(kind));
            let r = kind.build().solve(&g, 3);
            assert_eq!(r.solver, kind);
            assert_eq!(r.unique_coverage, 4, "{kind} missed the star optimum");
        }
        assert_eq!(SolverKind::parse("exact"), Some(SolverKind::Exact));
        assert_eq!(SolverKind::Exact.build().solve(&g, 0).unique_coverage, 4);
        assert!(SolverKind::parse("simulated-annealing").is_none());
    }

    #[test]
    fn solve_in_graph_accepts_any_backend() {
        use wx_graph::view::{materialize, ImplicitGraph, SubgraphView};
        use wx_graph::{Graph, GraphView};

        // C_12^2 as an implicit backend vs its CSR materialization: greedy
        // and local-search must certify the same unique coverage on both.
        let implicit = ImplicitGraph::cycle_power(12, 2).unwrap();
        let csr: Graph = materialize(&implicit);
        let s = VertexSet::from_iter(12, [0, 1, 2, 3]);
        let greedy = crate::greedy::GreedyMinDegreeSolver;
        let polish = crate::local_search::LocalSearchSolver::default();
        let a = greedy.solve_in_graph(&implicit, &s, 3);
        let b = greedy.solve_in_graph(&csr, &s, 3);
        assert_eq!(a.unique_coverage, b.unique_coverage);
        assert!(a.subset.iter().all(|v| s.contains(v)), "original-id subset");
        let a = polish.solve_in_graph(&implicit, &s, 3);
        let b = polish.solve_in_graph(&csr, &s, 3);
        assert_eq!(a.unique_coverage, b.unique_coverage);

        // and on a zero-copy induced view of a larger graph
        let big = materialize(&ImplicitGraph::cycle_power(30, 2).unwrap());
        let keep = VertexSet::from_iter(30, 0..15);
        let view = SubgraphView::new(&big, &keep);
        let s_local = VertexSet::from_iter(view.num_vertices(), [2, 3, 4]);
        let (mat, _) = big.induced_subgraph(&keep);
        let on_view = greedy.solve_in_graph(&view, &s_local, 9);
        let on_mat = greedy.solve_in_graph(&mat, &s_local, 9);
        assert_eq!(on_view.unique_coverage, on_mat.unique_coverage);
        assert_eq!(on_view.subset.to_vec(), on_mat.subset.to_vec());
    }

    #[test]
    fn coverage_fraction_of_empty_right_side() {
        let g = BipartiteGraph::from_edges(1, 0, []).unwrap();
        let r = SpokesmanResult::from_subset(SolverKind::Exact, &g, VertexSet::from_iter(1, [0]));
        assert_eq!(r.coverage_fraction(&g), 0.0);
    }
}
