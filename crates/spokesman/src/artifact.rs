//! Serializable spokesman solutions for content-addressed caches.
//!
//! A [`SpokesmanResult`] holds its subset as a [`VertexSet`] tied to a
//! particular bipartite instance and deliberately skips it during
//! serialization (reports only carry scalar summaries). A cache that
//! wants to *skip a resolve entirely* needs the subset itself, plus
//! enough shape information to detect that a cached entry is being
//! replayed against the wrong instance. [`SolutionArtifact`] is that
//! portable form: the solver kind, the instance's left-side size, the
//! chosen left-local indices, and the unique coverage the cold solve
//! observed — the last doubling as an integrity check on rehydration.

use serde::{Deserialize, Serialize};
use wx_graph::{BipartiteGraph, VertexSet};

use crate::solver::{SolverKind, SpokesmanResult};

/// A spokesman solution detached from its graph: serializable, and
/// checkable against the instance it is replayed on.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SolutionArtifact {
    /// Which solver produced the subset.
    pub solver: SolverKind,
    /// `num_left()` of the instance the subset was solved on.
    pub num_left: usize,
    /// The chosen subset as sorted left-local indices in `0..num_left`.
    pub subset: Vec<usize>,
    /// The unique coverage the cold solve observed (integrity check).
    pub unique_coverage: usize,
}

impl SolutionArtifact {
    /// Captures a solve result as a portable artifact. `num_left` is the
    /// left-side size of the instance the result was produced on.
    #[must_use]
    pub fn from_result(result: &SpokesmanResult, num_left: usize) -> SolutionArtifact {
        SolutionArtifact {
            solver: result.solver,
            num_left,
            subset: result.subset.to_vec(),
            unique_coverage: result.unique_coverage,
        }
    }

    /// Replays the artifact against `g`, recomputing the coverage from
    /// scratch. Returns `None` — "treat as a cache miss" — when the
    /// artifact does not fit the instance: wrong left-side size, an index
    /// out of range, or a recomputed unique coverage that disagrees with
    /// the one recorded at solve time.
    #[must_use]
    pub fn rehydrate(&self, g: &BipartiteGraph) -> Option<SpokesmanResult> {
        if self.num_left != g.num_left() {
            return None;
        }
        if self.subset.iter().any(|&v| v >= self.num_left) {
            return None;
        }
        let subset = VertexSet::from_iter(self.num_left, self.subset.iter().copied());
        let result = SpokesmanResult::from_subset(self.solver, g, subset);
        if result.unique_coverage != self.unique_coverage {
            return None;
        }
        Some(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star_instance() -> BipartiteGraph {
        // Two left vertices; vertex 0 covers all four right vertices.
        BipartiteGraph::from_edges(2, 4, (0..4).map(|w| (0, w)).chain([(1, 0)])).unwrap()
    }

    #[test]
    fn round_trips_through_serialization() {
        let g = star_instance();
        let cold = SolverKind::GreedyMinDegree.build().solve(&g, 7);
        let artifact = SolutionArtifact::from_result(&cold, g.num_left());
        let json = serde_json::to_string(&artifact).expect("serialize");
        let back: SolutionArtifact = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, artifact);
        let warm = back.rehydrate(&g).expect("artifact fits its own instance");
        assert_eq!(warm.solver, cold.solver);
        assert_eq!(warm.unique_coverage, cold.unique_coverage);
        assert_eq!(warm.subset_size, cold.subset_size);
        assert_eq!(warm.subset.to_vec(), cold.subset.to_vec());
    }

    #[test]
    fn rehydrate_rejects_mismatched_instances() {
        let g = star_instance();
        let cold = SolverKind::GreedyMinDegree.build().solve(&g, 7);
        let mut artifact = SolutionArtifact::from_result(&cold, g.num_left());

        let mut wrong_size = artifact.clone();
        wrong_size.num_left += 1;
        assert!(wrong_size.rehydrate(&g).is_none());

        let mut out_of_range = artifact.clone();
        out_of_range.subset.push(artifact.num_left);
        assert!(out_of_range.rehydrate(&g).is_none());

        artifact.unique_coverage += 1;
        assert!(artifact.rehydrate(&g).is_none());
    }
}
