//! Brute-force optimal spokesman election.
//!
//! Enumerates every subset `S' ⊆ S` and keeps the one with the largest
//! unique coverage. Exponential in `|S|`; used as ground truth in tests and
//! in the small-instance columns of experiments E7/E10, and as the exact
//! wireless-expansion oracle in `wx-expansion`.

use crate::solver::{SolverKind, SpokesmanResult, SpokesmanSolver};
use wx_graph::{BipartiteGraph, VertexSet};

/// Exhaustive optimal solver. Panics if the left side has more than
/// [`ExactSolver::MAX_LEFT`] vertices.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExactSolver;

impl ExactSolver {
    /// The largest left side the exact solver will accept.
    pub const MAX_LEFT: usize = 25;

    /// Returns the optimal unique coverage achievable on `g`, together with a
    /// witness subset.
    pub fn optimum(g: &BipartiteGraph) -> (usize, VertexSet) {
        let s = g.num_left();
        assert!(
            s <= Self::MAX_LEFT,
            "ExactSolver is limited to {} left vertices, got {s}",
            Self::MAX_LEFT
        );
        let mut best_cov = 0usize;
        let mut best_mask = 0u64;
        let mut count = vec![0u32; g.num_right()];
        for mask in 0u64..(1u64 << s) {
            for c in count.iter_mut() {
                *c = 0;
            }
            for u in 0..s {
                if (mask >> u) & 1 == 1 {
                    for &w in g.left_neighbors(u) {
                        count[w] += 1;
                    }
                }
            }
            let cov = count.iter().filter(|&&c| c == 1).count();
            if cov > best_cov {
                best_cov = cov;
                best_mask = mask;
            }
        }
        let subset = VertexSet::from_iter(s, (0..s).filter(|u| (best_mask >> u) & 1 == 1));
        (best_cov, subset)
    }

    /// `true` if the instance is small enough for the exact solver.
    pub fn is_feasible(g: &BipartiteGraph) -> bool {
        g.num_left() <= Self::MAX_LEFT
    }
}

impl SpokesmanSolver for ExactSolver {
    fn kind(&self) -> SolverKind {
        SolverKind::Exact
    }

    fn solve(&self, g: &BipartiteGraph, _seed: u64) -> SpokesmanResult {
        let (_, subset) = Self::optimum(g);
        SpokesmanResult::from_subset(SolverKind::Exact, g, subset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimum_on_star_is_everything() {
        let g = BipartiteGraph::from_edges(1, 5, (0..5).map(|w| (0, w))).unwrap();
        let (cov, subset) = ExactSolver::optimum(&g);
        assert_eq!(cov, 5);
        assert_eq!(subset.to_vec(), vec![0]);
    }

    #[test]
    fn optimum_on_shared_neighborhood_picks_one_side() {
        // two left vertices with identical neighborhoods {0,1,2}: taking both
        // uniquely covers nothing, taking one covers 3.
        let g = BipartiteGraph::from_edges(2, 3, [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)])
            .unwrap();
        let (cov, subset) = ExactSolver::optimum(&g);
        assert_eq!(cov, 3);
        assert_eq!(subset.len(), 1);
    }

    #[test]
    fn optimum_on_c_plus_like_instance() {
        // S = {x, y, s0}: x and y each see all of N = {0..3}; s0 sees nothing
        // of N (it only sees x and y in the original graph). Best subset: {x}
        // (or {y}), covering 4.
        let mut edges = Vec::new();
        for w in 0..4 {
            edges.push((0, w));
            edges.push((1, w));
        }
        let g = BipartiteGraph::from_edges(3, 4, edges).unwrap();
        let (cov, subset) = ExactSolver::optimum(&g);
        assert_eq!(cov, 4);
        assert_eq!(subset.len(), 1);
    }

    #[test]
    fn optimum_can_be_a_proper_mixed_subset() {
        // left 0 -> {0}, left 1 -> {0, 1}, left 2 -> {2}
        // best is {0 or 1, 2}? {1, 2} covers {0,1,2}\{}: w0 once, w1 once, w2 once = 3
        let g = BipartiteGraph::from_edges(3, 3, [(0, 0), (1, 0), (1, 1), (2, 2)]).unwrap();
        let (cov, _) = ExactSolver::optimum(&g);
        assert_eq!(cov, 3);
    }

    #[test]
    fn empty_instance() {
        let g = BipartiteGraph::from_edges(0, 0, []).unwrap();
        let (cov, subset) = ExactSolver::optimum(&g);
        assert_eq!(cov, 0);
        assert!(subset.is_empty());
    }

    #[test]
    fn solver_trait_produces_same_value_as_optimum() {
        let g = BipartiteGraph::from_edges(3, 3, [(0, 0), (1, 0), (1, 1), (2, 2)]).unwrap();
        let r = ExactSolver.solve(&g, 0);
        assert_eq!(r.unique_coverage, ExactSolver::optimum(&g).0);
        assert_eq!(r.solver, SolverKind::Exact);
    }

    #[test]
    #[should_panic(expected = "limited to")]
    fn too_large_instance_panics() {
        let g = BipartiteGraph::from_edges(26, 1, (0..26).map(|u| (u, 0))).unwrap();
        ExactSolver::optimum(&g);
    }

    #[test]
    fn feasibility_check() {
        let small = BipartiteGraph::from_edges(3, 1, [(0, 0)]).unwrap();
        assert!(ExactSolver::is_feasible(&small));
        let big = BipartiteGraph::from_edges(30, 1, [(0, 0)]).unwrap();
        assert!(!ExactSolver::is_feasible(&big));
    }
}
