//! The paper's bound formulas, collected in one place.
//!
//! These helpers evaluate the analytic expressions that the experiments
//! compare measured quantities against: the positive bounds of Theorem 1.1
//! and Appendix A, the negative bounds of Theorem 1.2 / Lemma 4.6 /
//! Corollary 4.11, and the combined `MG(δ)` profile of Corollary A.16.
//! All logarithms are base 2, matching the paper's `log`.

/// `log₂(x)` clamped below at `min_value` (the paper's bounds divide by
/// logarithms that are at least 1 in their stated parameter ranges; clamping
/// keeps the formulas well-defined slightly outside those ranges).
fn log2_clamped(x: f64, min_value: f64) -> f64 {
    x.log2().max(min_value)
}

/// The quantity `min{Δ/β, Δ·β}` that appears in both Theorem 1.1 and
/// Theorem 1.2 — a proxy for the average degree (and a lower bound on the
/// arboricity, see Section 2.1).
pub fn min_degree_ratio(max_degree: usize, beta: f64) -> f64 {
    let d = max_degree as f64;
    if beta <= 0.0 {
        return 0.0;
    }
    (d / beta).min(d * beta)
}

/// Theorem 1.1 (positive result): a lower bound on the wireless expansion of
/// an `(α, β)`-expander with maximum degree `Δ`:
/// `βw ≥ β / log₂(2·min{Δ/β, Δ·β})`, stated without the `Ω`-constant
/// (the reproduction treats the constant as 1 and verifies the *shape*).
pub fn theorem_1_1_lower_bound(max_degree: usize, beta: f64) -> f64 {
    if beta <= 0.0 {
        return 0.0;
    }
    beta / log2_clamped(2.0 * min_degree_ratio(max_degree, beta), 1.0)
}

/// Lemma 4.2's bound for the regime `β ≥ 1`: `βw ≥ β / log₂(2·δ_N)` where
/// `δ_N ≤ Δ/β` is the average degree of the neighborhood side.
pub fn lemma_4_2_bound(beta: f64, delta_n: f64) -> f64 {
    if beta <= 0.0 {
        return 0.0;
    }
    beta / log2_clamped(2.0 * delta_n.max(1.0), 1.0)
}

/// Lemma 4.3's bound for the regime `1/Δ ≤ β < 1`: `βw ≥ β / log₂(2·δ_S)`
/// where `δ_S ≤ Δ·β` is the average degree of the set side.
pub fn lemma_4_3_bound(beta: f64, delta_s: f64) -> f64 {
    lemma_4_2_bound(beta, delta_s)
}

/// Lemma 4.1 / Lemma 3.2: `βw ≥ βu ≥ 2β − Δ` (meaningful only for
/// `β > Δ/2`). Returns the (possibly negative) value of `2β − Δ`.
pub fn lemma_3_2_unique_bound(max_degree: usize, beta: f64) -> f64 {
    2.0 * beta - max_degree as f64
}

/// Lemma 3.1: the ordinary-expansion lower bound implied by unique expansion
/// `βu` on a `d`-regular graph with second adjacency eigenvalue `λ₂`:
/// `β ≥ (1 − 1/d)·βu + (d − λ₂)·(1 − αu)/d`.
pub fn lemma_3_1_expansion_bound(d: usize, lambda2: f64, alpha_u: f64, beta_u: f64) -> f64 {
    if d == 0 {
        return 0.0;
    }
    let d_f = d as f64;
    (1.0 - 1.0 / d_f) * beta_u + (d_f - lambda2) * (1.0 - alpha_u) / d_f
}

/// Lemma 4.6 (negative result, generalized core graph): the wireless
/// expansion of the generalized core graph is at most
/// `β*·4 / log₂(min{Δ*/β*, Δ*·β*})`.
pub fn lemma_4_6_upper_bound(max_degree: usize, beta: f64) -> f64 {
    if beta <= 0.0 {
        return 0.0;
    }
    4.0 * beta / log2_clamped(min_degree_ratio(max_degree, beta), 1.0)
}

/// Corollary 4.11 (worst-case expander): the wireless expansion of the
/// plugged expander `G̃` is at most
/// `24·β̃ / (ε³·log₂(min{Δ̃/β̃, Δ̃·β̃}))`.
pub fn corollary_4_11_upper_bound(max_degree: usize, beta: f64, epsilon: f64) -> f64 {
    if beta <= 0.0 || epsilon <= 0.0 {
        return f64::INFINITY;
    }
    24.0 * beta / (epsilon.powi(3) * log2_clamped(min_degree_ratio(max_degree, beta), 1.0))
}

/// Lemma A.1: the naive deterministic coverage guarantee `γ/Δ_S` as a count.
pub fn lemma_a_1_guarantee(gamma: usize, max_left_degree: usize) -> f64 {
    if max_left_degree == 0 {
        0.0
    } else {
        gamma as f64 / max_left_degree as f64
    }
}

/// Lemma A.3: the single-pass Procedure-Partition guarantee `γ/(8·δ)` where
/// `δ` is the average degree of the neighborhood side.
pub fn lemma_a_3_guarantee(gamma: usize, delta: f64) -> f64 {
    gamma as f64 / (8.0 * delta.max(1.0))
}

/// Corollary A.7: the degree-class guarantee `0.20087·γ / log₂Δ`.
pub fn corollary_a_7_guarantee(gamma: usize, max_degree: usize) -> f64 {
    let log_d = log2_clamped(max_degree.max(2) as f64, 1.0);
    crate::degree_class::OPTIMAL_BASE_VALUE * gamma as f64 / log_d
}

/// Lemma A.13: the near-optimal deterministic guarantee `γ/(9·log₂(2δ))`.
pub fn lemma_a_13_guarantee(gamma: usize, delta: f64) -> f64 {
    gamma as f64 / (9.0 * log2_clamped(2.0 * delta.max(1.0), 1.0))
}

/// Corollary A.15: `γ · min{1/(9·log₂δ), 1/20}` (the variant that replaces
/// `log 2δ` by `log δ` at the price of the `1/20` floor).
pub fn corollary_a_15_guarantee(gamma: usize, delta: f64) -> f64 {
    if delta <= 1.0 {
        return gamma as f64 / 20.0;
    }
    let by_log = 1.0 / (9.0 * log2_clamped(delta, f64::MIN_POSITIVE));
    gamma as f64 * by_log.clamp(0.0, 1.0 / 20.0)
}

/// The Corollary A.8 family of guarantees
/// `(1 − 1/t)·γ / (2(1+c)·log_c(t·δ))`, maximized numerically over `t > 1`
/// for the given base `c`.
pub fn corollary_a_8_guarantee(gamma: usize, delta: f64, c: f64) -> f64 {
    assert!(c > 1.0, "base must exceed 1");
    let delta = delta.max(1.0);
    let mut best = 0.0f64;
    // The optimum in t is interior and mild; a geometric sweep is plenty.
    let mut t = 1.05f64;
    while t <= 1024.0 {
        // Clamp the logarithm at 1: Corollary A.8 is only stated for
        // sufficiently large δ, and clamping keeps the guarantee conservative
        // (never above the trivial 1/(2(1+c)) per-class fraction) outside
        // that range.
        let denom = 2.0 * (1.0 + c) * ((t * delta).ln() / c.ln()).max(1.0);
        let val = (1.0 - 1.0 / t) * gamma as f64 / denom;
        best = best.max(val);
        t *= 1.1;
    }
    best
}

/// The combined profile `MG(δ)` of Corollary A.16: the best of the
/// Lemma A.13, Corollary A.15 and Corollary A.8 guarantees (per unit of `γ`).
/// Returns the guaranteed *fraction* of `γ`.
pub fn mg_profile(delta: f64) -> f64 {
    let delta = delta.max(1.0);
    let a13 = 1.0 / (9.0 * log2_clamped(2.0 * delta, 1.0));
    let a15 = if delta <= 1.0 {
        1.0 / 20.0
    } else {
        (1.0 / (9.0 * log2_clamped(delta, f64::MIN_POSITIVE))).min(1.0 / 20.0)
    };
    let a8 =
        corollary_a_8_guarantee(1_000_000, delta, crate::degree_class::OPTIMAL_BASE) / 1_000_000.0;
    a13.max(a15).max(a8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_degree_ratio_symmetry() {
        // β and 1/β give the same value of min{Δ/β, Δβ}.
        let d = 64;
        for beta in [0.25f64, 0.5, 2.0, 4.0] {
            let a = min_degree_ratio(d, beta);
            let b = min_degree_ratio(d, 1.0 / beta);
            assert!((a - b).abs() < 1e-9, "beta {beta}: {a} vs {b}");
        }
        assert_eq!(min_degree_ratio(10, 0.0), 0.0);
    }

    #[test]
    fn theorem_1_1_bound_monotone_in_beta_for_fixed_degree() {
        let d = 32;
        let mut prev = 0.0;
        for beta in [1.0f64, 2.0, 3.0, 4.0] {
            let v = theorem_1_1_lower_bound(d, beta);
            assert!(v >= prev, "bound must not decrease as beta grows");
            prev = v;
        }
    }

    #[test]
    fn theorem_1_1_reduces_loss_for_low_arboricity() {
        // When β is close to Δ (dense expansion) min{Δ/β, Δβ} is small, so
        // the loss factor log(2·min{..}) is O(1) and βw ≈ β.
        let d = 1024;
        let beta = 512.0;
        let bound = theorem_1_1_lower_bound(d, beta);
        assert!(bound >= beta / 2.0);
        // In the balanced regime β = √Δ the loss is ≈ log Δ / 2.
        let beta = 32.0;
        let bound = theorem_1_1_lower_bound(d, beta);
        assert!(bound < beta);
        assert!(bound > beta / 12.0);
    }

    #[test]
    fn lemma_bounds_are_consistent() {
        // Lemma 4.2 with δ_N = Δ/β equals the Δ/β branch of Theorem 1.1.
        let d = 100;
        let beta = 4.0;
        let v1 = lemma_4_2_bound(beta, d as f64 / beta);
        let v2 = beta / (2.0 * d as f64 / beta).log2();
        assert!((v1 - v2).abs() < 1e-9);
        assert!((lemma_4_3_bound(0.5, 8.0) - lemma_4_2_bound(0.5, 8.0)).abs() < 1e-12);
    }

    #[test]
    fn lemma_3_2_and_3_1_formulas() {
        assert_eq!(lemma_3_2_unique_bound(10, 7.0), 4.0);
        assert_eq!(lemma_3_2_unique_bound(10, 4.0), -2.0);
        let b = lemma_3_1_expansion_bound(4, 2.0, 0.1, 1.0);
        // (1 - 1/4)·1 + (4-2)·0.9/4 = 0.75 + 0.45 = 1.2
        assert!((b - 1.2).abs() < 1e-12);
        assert_eq!(lemma_3_1_expansion_bound(0, 0.0, 0.0, 1.0), 0.0);
    }

    #[test]
    fn negative_bounds_shrink_with_epsilon() {
        let d = 256;
        let beta = 8.0;
        let loose = corollary_4_11_upper_bound(d, beta, 0.4);
        let tight = corollary_4_11_upper_bound(d, beta, 0.1);
        assert!(
            tight > loose,
            "smaller epsilon weakens (increases) the upper bound"
        );
        assert!(lemma_4_6_upper_bound(d, beta) > 0.0);
        assert!(corollary_4_11_upper_bound(d, 0.0, 0.3).is_infinite());
    }

    #[test]
    fn appendix_guarantees_ordering() {
        // For moderate δ the near-optimal A.13 bound beats the naive A.3 one.
        let gamma = 1000;
        let delta = 16.0;
        assert!(lemma_a_13_guarantee(gamma, delta) > lemma_a_3_guarantee(gamma, delta));
        // And A.1 with max degree Δ ≥ δ is the weakest of the three for large Δ.
        assert!(lemma_a_1_guarantee(gamma, 256) < lemma_a_13_guarantee(gamma, delta));
        assert_eq!(lemma_a_1_guarantee(gamma, 0), 0.0);
    }

    #[test]
    fn mg_profile_behaviour() {
        // MG is non-increasing in δ and sits in (0, 1/9].
        let mut prev = f64::INFINITY;
        for delta in [1.0f64, 2.0, 4.0, 8.0, 32.0, 128.0, 1024.0] {
            let v = mg_profile(delta);
            assert!(v > 0.0 && v <= 1.0 / 9.0 + 1e-9, "MG({delta}) = {v}");
            assert!(v <= prev + 1e-9, "MG must be non-increasing");
            prev = v;
        }
        // Observation A.17 regime check: for small δ the 1/(9·log 2δ) branch
        // dominates; for δ in the middle band the 1/20 floor wins.
        let small = mg_profile(2.0);
        assert!((small - 1.0 / (9.0 * 2.0f64.log2().max(1.0) - 0.0)).abs() < 0.06);
        let mid = mg_profile(2.0f64.powf(15.0 / 9.0));
        assert!(mid >= 1.0 / 20.0 - 1e-9);
    }

    #[test]
    fn corollary_a8_improves_with_small_delta() {
        let g1 = corollary_a_8_guarantee(100, 2.0, crate::degree_class::OPTIMAL_BASE);
        let g2 = corollary_a_8_guarantee(100, 64.0, crate::degree_class::OPTIMAL_BASE);
        assert!(g1 > g2);
    }

    #[test]
    #[should_panic(expected = "base must exceed 1")]
    fn corollary_a8_rejects_bad_base() {
        corollary_a_8_guarantee(10, 4.0, 1.0);
    }

    #[test]
    fn corollary_a15_floor() {
        assert!((corollary_a_15_guarantee(200, 1.0) - 10.0).abs() < 1e-9);
        assert!(corollary_a_15_guarantee(200, 1_000_000.0) < 10.0);
    }
}
