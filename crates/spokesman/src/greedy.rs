//! The naive greedy procedure of Lemma A.1.
//!
//! The procedure repeatedly picks a right vertex `v ∈ N_tmp` with the fewest
//! remaining left neighbors, promotes one of those neighbors `w` into the
//! spokesman set `S_uni`, discards the other neighbors of `v` from `S_tmp`
//! (so they can never later collide with the promoted vertex), moves every
//! right vertex whose remaining neighborhood equals `Γ(v, S_tmp)` into
//! `N_uni`, and discards the other right neighbors of `w`.
//!
//! Lemma A.1 shows the resulting `S_uni` uniquely covers at least
//! `|N| / Δ_S` right vertices, where `Δ_S` is the maximum degree of a left
//! vertex.

use crate::solver::{SolverKind, SpokesmanResult, SpokesmanSolver};
use wx_graph::{BipartiteGraph, VertexSet};

/// Deterministic greedy solver implementing the procedure from Lemma A.1.
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedyMinDegreeSolver;

/// The internal outcome of the Lemma A.1 procedure, exposed for tests and for
/// the experiment harnesses that want to inspect the certified set `N_uni`.
#[derive(Clone, Debug)]
pub struct GreedyOutcome {
    /// The chosen spokesman set `S_uni` (left indices).
    pub s_uni: VertexSet,
    /// The set of right vertices certified to have a unique neighbor in
    /// `S_uni` by the procedure's invariant (I3).
    pub n_uni: VertexSet,
}

impl GreedyMinDegreeSolver {
    /// Runs the Lemma A.1 procedure and returns the full outcome.
    pub fn run(g: &BipartiteGraph) -> GreedyOutcome {
        let _span = wx_trace::span("spokesman.greedy");
        let num_left = g.num_left();
        let num_right = g.num_right();

        let mut s_tmp = VertexSet::full(num_left);
        let mut s_uni = VertexSet::empty(num_left);
        // N_tmp starts as the right vertices with at least one neighbor
        // (isolated right vertices can never be covered).
        let mut n_tmp =
            VertexSet::from_iter(num_right, (0..num_right).filter(|&w| g.right_degree(w) > 0));
        let mut n_uni = VertexSet::empty(num_right);
        // remaining[w] = |Γ(w, S_tmp)|, maintained incrementally: when a left
        // vertex leaves S_tmp, each of its right neighbors loses one
        // remaining neighbor (O(deg) per removal). This replaces the
        // re-filtered neighborhood counts in the min-degree selection below.
        let mut remaining: Vec<u32> = (0..num_right).map(|w| g.right_degree(w) as u32).collect();

        while !n_tmp.is_empty() {
            // Pick v in N_tmp minimizing |Γ(v, S_tmp)| (invariant I4 ensures
            // this is at least 1).
            let v = n_tmp
                .iter()
                .min_by_key(|&w| remaining[w])
                .expect("n_tmp is non-empty");
            let gamma_v: Vec<usize> = g
                .right_neighbors(v)
                .iter()
                .copied()
                .filter(|&u| s_tmp.contains(u))
                .collect();
            debug_assert_eq!(gamma_v.len(), remaining[v] as usize);
            debug_assert!(
                !gamma_v.is_empty(),
                "invariant I4 violated: a vertex of N_tmp lost all its S_tmp neighbors"
            );

            let gamma_v_set = VertexSet::from_iter(num_left, gamma_v.iter().copied());

            // Q_v: right vertices of N_tmp incident on at least one vertex of
            // Γ(v, S_tmp); split into Q'_v (identical remaining neighborhood)
            // and Q''_v (the rest). `Γ(w, S_tmp) = Γ(v, S_tmp)` iff the two
            // sets have equal size (the maintained counter) and
            // `Γ(w, S_tmp) ⊆ Γ(v, S_tmp)` — checked without materializing
            // `Γ(w, S_tmp)`.
            let mut q_prime: Vec<usize> = Vec::new();
            let mut q_double: Vec<usize> = Vec::new();
            let mut q_seen = VertexSet::empty(num_right);
            for &u in &gamma_v {
                for &w in g.left_neighbors(u) {
                    if n_tmp.contains(w) && q_seen.insert(w) {
                        let identical = remaining[w] as usize == gamma_v.len()
                            && g.right_neighbors(w)
                                .iter()
                                .all(|&x| !s_tmp.contains(x) || gamma_v_set.contains(x));
                        if identical {
                            q_prime.push(w);
                        } else {
                            q_double.push(w);
                        }
                    }
                }
            }
            debug_assert!(q_prime.contains(&v));

            // Promote an arbitrary vertex w of Γ(v, S_tmp) (we take the
            // smallest index for determinism), drop the others from S_tmp.
            let w_star = gamma_v[0];
            let mut drop_from_s_tmp = |u: usize, s_tmp: &mut VertexSet| {
                if s_tmp.remove(u) {
                    for &w in g.left_neighbors(u) {
                        remaining[w] -= 1;
                    }
                }
            };
            drop_from_s_tmp(w_star, &mut s_tmp);
            s_uni.insert(w_star);
            for &u in gamma_v.iter().skip(1) {
                drop_from_s_tmp(u, &mut s_tmp);
            }

            // Move Q'_v into N_uni; they all neighbor w_star and, because the
            // rest of Γ(v, S_tmp) was discarded, w_star stays their unique
            // neighbor in S_uni forever.
            for &w in &q_prime {
                n_tmp.remove(w);
                n_uni.insert(w);
            }
            // Remove neighbors of w_star that sit in Q''_v from N_tmp: they
            // are adjacent to the newly promoted w_star, so leaving them in
            // N_tmp would break invariants (I3)/(I4) later.
            for &w in &q_double {
                if g.has_edge(w_star, w) {
                    n_tmp.remove(w);
                }
            }
        }

        // One promotion per loop iteration, so |S_uni| *is* the number of
        // greedy picks — a scheduling-independent work count.
        wx_trace::count(
            wx_trace::CounterId::SpokesmanGreedyPicks,
            s_uni.len() as u64,
        );
        GreedyOutcome { s_uni, n_uni }
    }

    /// The Lemma A.1 guarantee for an instance: `⌈|N⁺| / Δ_S⌉ / |N|` of the
    /// right side is uniquely covered, where `N⁺` is the set of
    /// non-isolated right vertices. Returns the guaranteed *count*.
    pub fn guaranteed_coverage(g: &BipartiteGraph) -> usize {
        let covered_candidates = (0..g.num_right())
            .filter(|&w| g.right_degree(w) > 0)
            .count();
        let delta_s = g.max_left_degree();
        if delta_s == 0 {
            0
        } else {
            covered_candidates.div_ceil(delta_s)
        }
    }
}

impl SpokesmanSolver for GreedyMinDegreeSolver {
    fn kind(&self) -> SolverKind {
        SolverKind::GreedyMinDegree
    }

    fn solve(&self, g: &BipartiteGraph, _seed: u64) -> SpokesmanResult {
        let outcome = Self::run(g);
        SpokesmanResult::from_subset(SolverKind::GreedyMinDegree, g, outcome.s_uni)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_certificate(g: &BipartiteGraph, outcome: &GreedyOutcome) {
        // Every vertex of N_uni must have exactly one neighbor in S_uni
        // (invariant I3 of Lemma A.1).
        for w in outcome.n_uni.iter() {
            let cnt = g
                .right_neighbors(w)
                .iter()
                .filter(|&&u| outcome.s_uni.contains(u))
                .count();
            assert_eq!(cnt, 1, "vertex {w} of N_uni has {cnt} neighbors in S_uni");
        }
    }

    #[test]
    fn star_is_fully_covered() {
        let g = BipartiteGraph::from_edges(1, 6, (0..6).map(|w| (0, w))).unwrap();
        let out = GreedyMinDegreeSolver::run(&g);
        check_certificate(&g, &out);
        assert_eq!(out.n_uni.len(), 6);
        let r = GreedyMinDegreeSolver.solve(&g, 0);
        assert_eq!(r.unique_coverage, 6);
    }

    #[test]
    fn twin_left_vertices_keep_one() {
        // two left vertices with identical neighborhoods; greedy must keep
        // exactly one of them to cover all three right vertices uniquely.
        let g = BipartiteGraph::from_edges(2, 3, [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)])
            .unwrap();
        let out = GreedyMinDegreeSolver::run(&g);
        check_certificate(&g, &out);
        assert_eq!(out.s_uni.len(), 1);
        assert_eq!(out.n_uni.len(), 3);
    }

    #[test]
    fn meets_lemma_a1_guarantee_on_random_instances() {
        use rand::Rng;
        let mut rng = wx_graph::random::rng_from_seed(7);
        for trial in 0..30 {
            let s = 3 + (trial % 8);
            let n = 4 + (trial % 13);
            let mut edges = Vec::new();
            for u in 0..s {
                for w in 0..n {
                    if rng.gen_bool(0.3) {
                        edges.push((u, w));
                    }
                }
            }
            if edges.is_empty() {
                continue;
            }
            let g = BipartiteGraph::from_edges(s, n, edges).unwrap();
            let out = GreedyMinDegreeSolver::run(&g);
            check_certificate(&g, &out);
            let guarantee = GreedyMinDegreeSolver::guaranteed_coverage(&g);
            assert!(
                out.n_uni.len() >= guarantee,
                "trial {trial}: greedy covered {} < guarantee {guarantee}",
                out.n_uni.len()
            );
            // the reported unique coverage is at least the certified set size
            let r = GreedyMinDegreeSolver.solve(&g, 0);
            assert!(r.unique_coverage >= out.n_uni.len());
        }
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::from_edges(2, 2, []).unwrap();
        let out = GreedyMinDegreeSolver::run(&g);
        assert!(out.s_uni.is_empty());
        assert!(out.n_uni.is_empty());
        assert_eq!(GreedyMinDegreeSolver::guaranteed_coverage(&g), 0);
    }

    #[test]
    fn isolated_right_vertices_are_ignored() {
        let g = BipartiteGraph::from_edges(1, 3, [(0, 0)]).unwrap();
        let out = GreedyMinDegreeSolver::run(&g);
        check_certificate(&g, &out);
        assert_eq!(out.n_uni.len(), 1);
    }

    #[test]
    fn chain_structure() {
        // left u covers right {u, u+1}: classic overlap; optimal unique
        // coverage is achieved by alternating spokesmen.
        let s = 6;
        let mut edges = Vec::new();
        for u in 0..s {
            edges.push((u, u));
            edges.push((u, u + 1));
        }
        let g = BipartiteGraph::from_edges(s, s + 1, edges).unwrap();
        let out = GreedyMinDegreeSolver::run(&g);
        check_certificate(&g, &out);
        assert!(out.n_uni.len() >= GreedyMinDegreeSolver::guaranteed_coverage(&g));
        assert!(out.n_uni.len() >= s.div_ceil(2));
    }
}
