//! Incremental unique-coverage tracking for spokesman subsets.
//!
//! Local search (and any solver that edits a candidate subset one vertex at a
//! time) needs `|Γ¹_S(S')|` after every prospective flip. Re-measuring from
//! scratch costs O(|E|) per flip; [`CoverageTracker`] instead maintains, for
//! every right vertex `w`, the number of chosen left neighbors
//! (`cover_count[w]`), so the *delta* of adding or removing a left vertex `u`
//! is computable in O(deg u):
//!
//! * adding `u`: a right neighbor at count 0 becomes uniquely covered (+1),
//!   one at count 1 loses unique coverage (−1);
//! * removing `u`: count 1 → 0 loses (−1), count 2 → 1 gains (+1).
//!
//! This is the same counter-array idea as the epoch-stamped
//! [`wx_graph::NeighborhoodScratch`] kernel in `wx-graph`, specialized to a
//! *persistent* subset that evolves by single-vertex moves instead of being
//! rebuilt per evaluation. The tracker is the engine behind
//! [`crate::local_search::LocalSearchImprover`] and is exposed so experiment
//! harnesses (and the delta-consistency property tests) can drive move
//! sequences directly.

use wx_graph::{BipartiteGraph, VertexSet};

/// Maintains a subset `S'` of the left side of a bipartite graph together
/// with its unique coverage `|Γ¹_S(S')|`, under O(deg) single-vertex moves.
#[derive(Clone, Debug)]
pub struct CoverageTracker<'g> {
    g: &'g BipartiteGraph,
    chosen: VertexSet,
    /// `cover_count[w]` = number of chosen left neighbors of right vertex `w`.
    cover_count: Vec<u32>,
    coverage: usize,
}

impl<'g> CoverageTracker<'g> {
    /// Builds a tracker for `subset` (one full O(|E(S')|) pass; every later
    /// query is incremental).
    pub fn new(g: &'g BipartiteGraph, subset: &VertexSet) -> Self {
        let mut cover_count = vec![0u32; g.num_right()];
        for u in subset.iter() {
            for &w in g.left_neighbors(u) {
                cover_count[w] += 1;
            }
        }
        let coverage = cover_count.iter().filter(|&&c| c == 1).count();
        CoverageTracker {
            g,
            chosen: subset.clone(),
            cover_count,
            coverage,
        }
    }

    /// The current subset.
    pub fn chosen(&self) -> &VertexSet {
        &self.chosen
    }

    /// The current unique coverage `|Γ¹_S(S')|`.
    pub fn coverage(&self) -> usize {
        self.coverage
    }

    /// `true` if left vertex `u` is currently chosen.
    pub fn contains(&self, u: usize) -> bool {
        self.chosen.contains(u)
    }

    /// The coverage change that *would* result from flipping `u` (adding it
    /// when absent, removing it when present), in O(deg u), without mutating
    /// the tracker.
    pub fn flip_delta(&self, u: usize) -> i64 {
        let adding = !self.chosen.contains(u);
        let mut delta = 0i64;
        for &w in self.g.left_neighbors(u) {
            let c = self.cover_count[w];
            if adding {
                // 0 -> 1 gains a uniquely covered vertex, 1 -> 2 loses one
                if c == 0 {
                    delta += 1;
                } else if c == 1 {
                    delta -= 1;
                }
            } else {
                // 1 -> 0 loses, 2 -> 1 gains
                if c == 1 {
                    delta -= 1;
                } else if c == 2 {
                    delta += 1;
                }
            }
        }
        delta
    }

    /// Flips `u` and applies its delta to the maintained coverage, in one
    /// O(deg u) pass (the delta is derived from each counter as it is
    /// updated). Returns the applied delta.
    pub fn flip(&mut self, u: usize) -> i64 {
        let adding = !self.chosen.contains(u);
        let mut delta = 0i64;
        for &w in self.g.left_neighbors(u) {
            let c = self.cover_count[w];
            if adding {
                if c == 0 {
                    delta += 1;
                } else if c == 1 {
                    delta -= 1;
                }
                self.cover_count[w] = c + 1;
            } else {
                if c == 1 {
                    delta -= 1;
                } else if c == 2 {
                    delta += 1;
                }
                self.cover_count[w] = c - 1;
            }
        }
        if adding {
            self.chosen.insert(u);
        } else {
            self.chosen.remove(u);
        }
        self.coverage = (self.coverage as i64 + delta) as usize;
        delta
    }

    /// Consumes the tracker, returning the subset and its coverage.
    pub fn into_parts(self) -> (VertexSet, usize) {
        (self.chosen, self.coverage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(s: usize) -> BipartiteGraph {
        // left u covers right {u, u+1}
        let mut edges = Vec::new();
        for u in 0..s {
            edges.push((u, u));
            edges.push((u, u + 1));
        }
        BipartiteGraph::from_edges(s, s + 1, edges).unwrap()
    }

    #[test]
    fn tracker_matches_full_recount_after_each_flip() {
        let g = chain(6);
        let mut t = CoverageTracker::new(&g, &VertexSet::empty(g.num_left()));
        assert_eq!(t.coverage(), 0);
        for &u in &[0, 2, 4, 2, 1, 0, 5] {
            let predicted = t.coverage() as i64 + t.flip_delta(u);
            t.flip(u);
            assert_eq!(t.coverage() as i64, predicted);
            assert_eq!(t.coverage(), g.unique_coverage(t.chosen()));
        }
    }

    #[test]
    fn flip_delta_does_not_mutate() {
        let g = chain(4);
        let t = CoverageTracker::new(&g, &VertexSet::from_iter(4, [1, 2]));
        let before = t.coverage();
        let _ = t.flip_delta(0);
        let _ = t.flip_delta(1);
        assert_eq!(t.coverage(), before);
        assert_eq!(t.chosen().to_vec(), vec![1, 2]);
    }

    #[test]
    fn into_parts_reports_final_state() {
        let g = chain(3);
        let mut t = CoverageTracker::new(&g, &VertexSet::empty(3));
        t.flip(0);
        t.flip(2);
        let (subset, cov) = t.into_parts();
        assert_eq!(subset.to_vec(), vec![0, 2]);
        assert_eq!(cov, g.unique_coverage(&subset));
    }
}
