//! Procedure Partition (Appendix A.1.2) and the solvers built on top of it.
//!
//! Procedure Partition splits the right side `N` into `N_uni ∪ N_many ∪ N_tmp`
//! and the left side `S` into `S_uni ∪ S_tmp` so that the four *partition
//! conditions* hold:
//!
//! * **(P1)** every vertex of `N_uni` has a unique neighbor in `S_uni`;
//! * **(P2)** every vertex of `N_tmp` has at least one neighbor in `S_tmp`
//!   and no neighbor in `S_uni`;
//! * **(P3)** `|N_uni| ≥ |N_many|`;
//! * **(P4)** either `N_tmp = ∅` or `|E_tmp| ≤ 2·|E_uni|`, where `E_uni`
//!   (resp. `E_tmp`) are the edges between `S_tmp` and `N_uni` (resp.
//!   `N_tmp`).
//!
//! On top of the procedure we implement:
//!
//! * [`PartitionSolver`] in *low-degree* mode — the Lemma A.3 argument:
//!   restrict `N` to the vertices of degree at most `2δ_N` and run the
//!   procedure once, giving `|Γ¹_S(S')| ≥ |N|/(8δ_N)`.
//! * [`PartitionSolver`] in *recursive* mode (the default) — the Lemma A.13
//!   argument: run the procedure, and if `N_tmp` is non-empty recursively
//!   solve the residual instance `(S_tmp, N_tmp)`, returning the better of
//!   `S_uni` and the recursive answer. This achieves the near-optimal
//!   deterministic bound `|Γ¹_S(S')| ≥ |N|/(9·log 2δ_N)`.

use crate::solver::{SolverKind, SpokesmanResult, SpokesmanSolver};
use wx_graph::{BipartiteGraph, VertexSet};

/// The outcome of one run of Procedure Partition.
#[derive(Clone, Debug)]
pub struct PartitionOutcome {
    /// Left vertices promoted to the spokesman set.
    pub s_uni: VertexSet,
    /// Left vertices never promoted.
    pub s_tmp: VertexSet,
    /// Right vertices with a unique neighbor in `s_uni` (condition P1).
    pub n_uni: VertexSet,
    /// Right vertices that once were in `n_uni` but lost uniqueness ("junk").
    pub n_many: VertexSet,
    /// Right vertices never touched (condition P2).
    pub n_tmp: VertexSet,
}

impl PartitionOutcome {
    /// Verifies the four partition conditions; returns an error message for
    /// the first violated condition. Used by tests and by debug assertions in
    /// the experiment harnesses.
    pub fn check_conditions(
        &self,
        g: &BipartiteGraph,
        candidates: &VertexSet,
    ) -> Result<(), String> {
        // The three right-side parts partition the candidate set.
        let mut seen = VertexSet::empty(g.num_right());
        for part in [&self.n_uni, &self.n_many, &self.n_tmp] {
            for w in part.iter() {
                if !candidates.contains(w) {
                    return Err(format!("right vertex {w} not among candidates"));
                }
                if !seen.insert(w) {
                    return Err(format!("right vertex {w} appears in two parts"));
                }
            }
        }
        if seen.len() != candidates.len() {
            return Err("right parts do not cover all candidates".to_string());
        }
        // (P1)
        for w in self.n_uni.iter() {
            let cnt = g
                .right_neighbors(w)
                .iter()
                .filter(|&&u| self.s_uni.contains(u))
                .count();
            if cnt != 1 {
                return Err(format!(
                    "(P1) violated: vertex {w} has {cnt} neighbors in S_uni"
                ));
            }
        }
        // (P2)
        for w in self.n_tmp.iter() {
            let in_tmp = g
                .right_neighbors(w)
                .iter()
                .filter(|&&u| self.s_tmp.contains(u))
                .count();
            let in_uni = g
                .right_neighbors(w)
                .iter()
                .filter(|&&u| self.s_uni.contains(u))
                .count();
            if in_tmp == 0 {
                return Err(format!(
                    "(P2) violated: vertex {w} of N_tmp has no S_tmp neighbor"
                ));
            }
            if in_uni != 0 {
                return Err(format!("(P2) violated: vertex {w} of N_tmp sees S_uni"));
            }
        }
        // (P3)
        if self.n_uni.len() < self.n_many.len() {
            return Err(format!(
                "(P3) violated: |N_uni| = {} < |N_many| = {}",
                self.n_uni.len(),
                self.n_many.len()
            ));
        }
        // (P4)
        if !self.n_tmp.is_empty() {
            let e_uni: usize = self
                .s_tmp
                .iter()
                .map(|u| {
                    g.left_neighbors(u)
                        .iter()
                        .filter(|&&w| self.n_uni.contains(w))
                        .count()
                })
                .sum();
            let e_tmp: usize = self
                .s_tmp
                .iter()
                .map(|u| {
                    g.left_neighbors(u)
                        .iter()
                        .filter(|&&w| self.n_tmp.contains(w))
                        .count()
                })
                .sum();
            if e_tmp > 2 * e_uni {
                return Err(format!(
                    "(P4) violated: |E_tmp| = {e_tmp} > 2·|E_uni| = {}",
                    2 * e_uni
                ));
            }
        }
        Ok(())
    }
}

/// Runs Procedure Partition on the bipartite graph `g`, considering only the
/// right vertices in `candidates` (Lemma A.3 and A.13 both run the procedure
/// on a degree-restricted subset of `N`). Left side is all of `0..num_left`.
pub fn procedure_partition(g: &BipartiteGraph, candidates: &VertexSet) -> PartitionOutcome {
    let num_left = g.num_left();
    let num_right = g.num_right();

    let mut s_tmp = VertexSet::full(num_left);
    let mut s_uni = VertexSet::empty(num_left);
    let mut n_tmp = candidates.clone();
    let mut n_uni = VertexSet::empty(num_right);
    let mut n_many = VertexSet::empty(num_right);

    loop {
        if s_tmp.is_empty() {
            break;
        }
        // Pick v ∈ S_tmp maximizing gain(v) = |N_tmp(v)| − 2·|N_uni(v)|.
        let mut best: Option<(usize, i64)> = None;
        for u in s_tmp.iter() {
            let mut tmp_cnt = 0i64;
            let mut uni_cnt = 0i64;
            for &w in g.left_neighbors(u) {
                if n_tmp.contains(w) {
                    tmp_cnt += 1;
                } else if n_uni.contains(w) {
                    uni_cnt += 1;
                }
            }
            let gain = tmp_cnt - 2 * uni_cnt;
            match best {
                None => best = Some((u, gain)),
                Some((_, bg)) if gain > bg => best = Some((u, gain)),
                _ => {}
            }
        }
        let (v, gain) = best.expect("s_tmp is non-empty");
        if gain <= 0 {
            break;
        }
        // Promote v: S_tmp → S_uni.
        s_tmp.remove(v);
        s_uni.insert(v);
        // Neighbors of v previously in N_uni lose uniqueness → N_many.
        // Neighbors of v in N_tmp become uniquely covered → N_uni.
        for &w in g.left_neighbors(v) {
            if n_uni.contains(w) {
                n_uni.remove(w);
                n_many.insert(w);
            } else if n_tmp.contains(w) {
                n_tmp.remove(w);
                n_uni.insert(w);
            }
        }
    }

    PartitionOutcome {
        s_uni,
        s_tmp,
        n_uni,
        n_many,
        n_tmp,
    }
}

/// Which variant of the partition-based argument to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionMode {
    /// Lemma A.3: restrict to right vertices of degree at most `2δ_N`, run
    /// the procedure once. Guarantee `|N|/(8δ_N)`.
    LowDegreeOnce,
    /// Lemma A.13: run the procedure on all of `N`, recursing into the
    /// residual `(S_tmp, N_tmp)` instance. Guarantee `|N|/(9·log 2δ_N)`.
    Recursive,
}

/// Deterministic solver built on Procedure Partition.
#[derive(Clone, Copy, Debug)]
pub struct PartitionSolver {
    /// Which argument (Lemma A.3 or Lemma A.13) to follow.
    pub mode: PartitionMode,
    /// Safety cap on recursion depth for [`PartitionMode::Recursive`]; the
    /// residual instance shrinks strictly so `log₂|N| + 1` always suffices,
    /// but the cap keeps adversarial inputs from deep recursion.
    pub max_depth: usize,
}

impl Default for PartitionSolver {
    fn default() -> Self {
        PartitionSolver {
            mode: PartitionMode::Recursive,
            max_depth: 64,
        }
    }
}

impl PartitionSolver {
    /// A solver following the single-pass Lemma A.3 argument.
    pub fn low_degree_once() -> Self {
        PartitionSolver {
            mode: PartitionMode::LowDegreeOnce,
            max_depth: 1,
        }
    }

    fn solve_recursive(&self, g: &BipartiteGraph, depth: usize) -> VertexSet {
        let candidates = VertexSet::from_iter(
            g.num_right(),
            (0..g.num_right()).filter(|&w| g.right_degree(w) > 0),
        );
        if candidates.is_empty() || g.num_left() == 0 {
            return VertexSet::empty(g.num_left());
        }
        let outcome = procedure_partition(g, &candidates);
        let mut best_subset = outcome.s_uni.clone();
        let mut best_cov = g.unique_coverage(&best_subset);

        if self.mode == PartitionMode::Recursive
            && depth < self.max_depth
            && !outcome.n_tmp.is_empty()
            && !outcome.s_tmp.is_empty()
            // guard against non-shrinking recursion (possible only if the
            // first round promoted nothing, which cannot happen when some
            // left vertex has a positive gain; be defensive anyway)
            && outcome.n_tmp.len() < candidates.len()
        {
            // Build the residual instance on (S_tmp, N_tmp) and recurse.
            let s_tmp_vertices: Vec<usize> = outcome.s_tmp.to_vec();
            let n_tmp_vertices: Vec<usize> = outcome.n_tmp.to_vec();
            let mut right_index = vec![usize::MAX; g.num_right()];
            for (i, &w) in n_tmp_vertices.iter().enumerate() {
                right_index[w] = i;
            }
            let mut b = wx_graph::BipartiteBuilder::new(s_tmp_vertices.len(), n_tmp_vertices.len());
            for (i, &u) in s_tmp_vertices.iter().enumerate() {
                for &w in g.left_neighbors(u) {
                    if outcome.n_tmp.contains(w) {
                        b.add_edge(i, right_index[w]).expect("in range");
                    }
                }
            }
            let sub = b.build();
            let rec_local = self.solve_recursive(&sub, depth + 1);
            let rec_subset =
                VertexSet::from_iter(g.num_left(), rec_local.iter().map(|i| s_tmp_vertices[i]));
            let rec_cov = g.unique_coverage(&rec_subset);
            if rec_cov > best_cov {
                best_cov = rec_cov;
                best_subset = rec_subset;
            }
        }
        let _ = best_cov;
        best_subset
    }

    fn solve_low_degree(&self, g: &BipartiteGraph) -> VertexSet {
        let delta_n = g.average_right_degree();
        let cutoff = (2.0 * delta_n).floor() as usize;
        let candidates = VertexSet::from_iter(
            g.num_right(),
            (0..g.num_right()).filter(|&w| {
                let d = g.right_degree(w);
                d > 0 && d <= cutoff.max(1)
            }),
        );
        if candidates.is_empty() {
            return VertexSet::empty(g.num_left());
        }
        procedure_partition(g, &candidates).s_uni
    }
}

impl SpokesmanSolver for PartitionSolver {
    fn kind(&self) -> SolverKind {
        SolverKind::Partition
    }

    fn solve(&self, g: &BipartiteGraph, _seed: u64) -> SpokesmanResult {
        let subset = match self.mode {
            PartitionMode::LowDegreeOnce => self.solve_low_degree(g),
            PartitionMode::Recursive => self.solve_recursive(g, 0),
        };
        SpokesmanResult::from_subset(SolverKind::Partition, g, subset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn random_instance(seed: u64, s: usize, n: usize, p: f64) -> BipartiteGraph {
        let mut rng = wx_graph::random::rng_from_seed(seed);
        let mut edges = Vec::new();
        for u in 0..s {
            for w in 0..n {
                if rng.gen_bool(p) {
                    edges.push((u, w));
                }
            }
        }
        BipartiteGraph::from_edges(s, n, edges).unwrap()
    }

    #[test]
    fn partition_conditions_hold_on_random_instances() {
        for seed in 0..25u64 {
            let g = random_instance(seed, 8, 14, 0.25);
            let candidates = VertexSet::from_iter(
                g.num_right(),
                (0..g.num_right()).filter(|&w| g.right_degree(w) > 0),
            );
            let outcome = procedure_partition(&g, &candidates);
            outcome
                .check_conditions(&g, &candidates)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn partition_on_star() {
        let g = BipartiteGraph::from_edges(1, 5, (0..5).map(|w| (0, w))).unwrap();
        let candidates = VertexSet::full(5);
        let outcome = procedure_partition(&g, &candidates);
        outcome.check_conditions(&g, &candidates).unwrap();
        assert_eq!(outcome.n_uni.len(), 5);
        assert_eq!(outcome.s_uni.len(), 1);
        assert!(outcome.n_tmp.is_empty());
    }

    #[test]
    fn recursive_solver_meets_lemma_a13_guarantee() {
        for seed in 0..20u64 {
            let g = random_instance(seed + 100, 10, 25, 0.3);
            if g.num_edges() == 0 {
                continue;
            }
            let gamma = (0..g.num_right())
                .filter(|&w| g.right_degree(w) > 0)
                .count();
            let delta_n = g.num_edges() as f64 / gamma.max(1) as f64;
            let guarantee = (gamma as f64) / (9.0 * (2.0 * delta_n).log2().max(1.0));
            let r = PartitionSolver::default().solve(&g, 0);
            assert!(
                (r.unique_coverage as f64) >= guarantee.floor(),
                "seed {seed}: coverage {} below Lemma A.13 guarantee {guarantee}",
                r.unique_coverage
            );
        }
    }

    #[test]
    fn low_degree_solver_meets_lemma_a3_guarantee() {
        for seed in 0..20u64 {
            let g = random_instance(seed + 500, 12, 20, 0.35);
            if g.num_edges() == 0 {
                continue;
            }
            let gamma = (0..g.num_right())
                .filter(|&w| g.right_degree(w) > 0)
                .count();
            let delta_n = g.num_edges() as f64 / gamma.max(1) as f64;
            let guarantee = gamma as f64 / (8.0 * delta_n.max(1.0));
            let r = PartitionSolver::low_degree_once().solve(&g, 0);
            assert!(
                (r.unique_coverage as f64) >= guarantee.floor(),
                "seed {seed}: coverage {} below Lemma A.3 guarantee {guarantee}",
                r.unique_coverage
            );
        }
    }

    #[test]
    fn recursion_beats_or_matches_single_pass() {
        for seed in 0..10u64 {
            let g = random_instance(seed + 900, 10, 30, 0.4);
            let single = PartitionSolver {
                mode: PartitionMode::Recursive,
                max_depth: 0,
            }
            .solve(&g, 0);
            let rec = PartitionSolver::default().solve(&g, 0);
            assert!(rec.unique_coverage >= single.unique_coverage);
        }
    }

    #[test]
    fn empty_and_edgeless_instances() {
        let g = BipartiteGraph::from_edges(0, 0, []).unwrap();
        assert_eq!(PartitionSolver::default().solve(&g, 0).unique_coverage, 0);
        let g = BipartiteGraph::from_edges(3, 3, []).unwrap();
        assert_eq!(PartitionSolver::default().solve(&g, 0).unique_coverage, 0);
        assert_eq!(
            PartitionSolver::low_degree_once()
                .solve(&g, 0)
                .unique_coverage,
            0
        );
    }

    #[test]
    fn twin_heavy_instance() {
        // Many identical left vertices: partition must promote exactly one.
        let mut edges = Vec::new();
        for u in 0..6 {
            for w in 0..4 {
                edges.push((u, w));
            }
        }
        let g = BipartiteGraph::from_edges(6, 4, edges).unwrap();
        let r = PartitionSolver::default().solve(&g, 0);
        assert_eq!(r.unique_coverage, 4);
    }
}
