//! The randomized decay-style sampler of Lemmas 4.2 and 4.3.
//!
//! Lemma 4.2 (the case `β ≥ 1`, i.e. `|N| ≥ |S|`): restrict attention to the
//! right vertices of degree at most `2δ_N` (at least half of `N`), bucket
//! them dyadically by degree, and for the bucket `N_j` with degrees in
//! `[2^j, 2^{j+1})` sample every left vertex independently with probability
//! `2^{-j}`. Each vertex of `N_j` then has exactly one sampled neighbor with
//! probability at least `e^{-3}`, so some sample uniquely covers
//! `Ω(|N| / log 2δ_N)` vertices.
//!
//! Lemma 4.3 (the case `β < 1`): first restrict the *left* side to vertices
//! of degree at most `2δ_S`, thin it to a subset `S''` with `|S''| ≤ |N'|`
//! that still covers the same neighborhood `N' = Γ(S')` (greedy new-vertex
//! rule), and then apply the Lemma 4.2 sampler to the induced instance.
//!
//! The solver runs both pipelines (they coincide when `β ≥ 1` up to the
//! harmless left-restriction) over every dyadic level and several independent
//! trials per level, and returns the best subset found. It is the direct
//! implementation of the paper's "extremely simple" randomized solution to
//! the Spokesman Election problem (Section 4.2.1).

use crate::solver::{SolverKind, SpokesmanResult, SpokesmanSolver};
use rand::Rng;
use wx_graph::random::{derive_seed, rng_from_seed};
use wx_graph::{BipartiteGraph, VertexSet};

/// Configuration for the randomized decay sampler.
#[derive(Clone, Copy, Debug)]
pub struct RandomDecaySolver {
    /// Independent samples drawn per probability level (higher = better
    /// coverage, linearly more work). The paper's existence argument needs
    /// only the expectation; a handful of trials gets within noise of it.
    pub trials_per_level: usize,
    /// Also run the Lemma 4.3 left-restriction pipeline.
    pub use_left_restriction: bool,
}

impl Default for RandomDecaySolver {
    fn default() -> Self {
        RandomDecaySolver {
            trials_per_level: 8,
            use_left_restriction: true,
        }
    }
}

impl RandomDecaySolver {
    /// A cheaper configuration for inner loops (one trial per level, no
    /// left-restriction pipeline).
    pub fn fast() -> Self {
        RandomDecaySolver {
            trials_per_level: 1,
            use_left_restriction: false,
        }
    }

    /// The dyadic decay sweep of Lemma 4.2 applied to an explicit candidate
    /// set of right vertices: for each level `j` sample left vertices with
    /// probability `2^{-j}` and keep the subset with the best unique coverage
    /// over the *whole* graph.
    fn decay_sweep(
        &self,
        g: &BipartiteGraph,
        left_pool: &VertexSet,
        max_level: u32,
        seed: u64,
    ) -> (usize, VertexSet) {
        let mut best_cov = 0usize;
        let mut best_subset = VertexSet::empty(g.num_left());
        for j in 0..=max_level {
            let p = 0.5f64.powi(j as i32);
            for t in 0..self.trials_per_level {
                let mut rng = rng_from_seed(derive_seed(seed, (j as u64) << 32 | t as u64));
                let sample = VertexSet::from_iter(
                    g.num_left(),
                    left_pool.iter().filter(|_| rng.gen_bool(p)),
                );
                let cov = g.unique_coverage(&sample);
                if cov > best_cov {
                    best_cov = cov;
                    best_subset = sample;
                }
            }
        }
        (best_cov, best_subset)
    }

    /// Number of dyadic levels to sweep: enough to reach sampling probability
    /// `1/(2·max_degree)`, the lowest level the proof of Lemma 4.2 ever needs.
    fn levels_for(&self, g: &BipartiteGraph) -> u32 {
        let d = g.max_right_degree().max(1) as f64;
        (2.0 * d).log2().ceil().max(1.0) as u32
    }

    /// The Lemma 4.3 preprocessing: restrict the left side to vertices of
    /// degree at most `2δ_S` and thin it so that `|S''| ≤ |Γ(S'')|` while
    /// preserving the covered neighborhood. Returns the thinned left pool.
    pub fn left_restriction_pool(g: &BipartiteGraph) -> VertexSet {
        let delta_s = g.average_left_degree();
        let cutoff = (2.0 * delta_s).floor().max(1.0) as usize;
        let mut pool = VertexSet::empty(g.num_left());
        let mut covered = VertexSet::empty(g.num_right());
        // Iterate over low-degree left vertices and keep a vertex only if it
        // covers a previously uncovered right vertex (the |S''| ≤ |N'| rule
        // in the proof of Lemma 4.3).
        for u in 0..g.num_left() {
            let d = g.left_degree(u);
            if d == 0 || d > cutoff {
                continue;
            }
            let covers_new = g.left_neighbors(u).iter().any(|&w| !covered.contains(w));
            if covers_new {
                pool.insert(u);
                for &w in g.left_neighbors(u) {
                    covered.insert(w);
                }
            }
        }
        pool
    }
}

impl SpokesmanSolver for RandomDecaySolver {
    fn kind(&self) -> SolverKind {
        SolverKind::RandomDecay
    }

    fn solve(&self, g: &BipartiteGraph, seed: u64) -> SpokesmanResult {
        if g.num_left() == 0 || g.num_right() == 0 || g.num_edges() == 0 {
            return SpokesmanResult::from_subset(
                SolverKind::RandomDecay,
                g,
                VertexSet::empty(g.num_left()),
            );
        }
        let levels = self.levels_for(g);

        // Pipeline A (Lemma 4.2): all left vertices participate.
        let all_left = VertexSet::full(g.num_left());
        let (cov_a, sub_a) = self.decay_sweep(g, &all_left, levels, derive_seed(seed, 0xA));

        let (best_cov, best_sub) = if self.use_left_restriction {
            // Pipeline B (Lemma 4.3): restrict + thin the left side first.
            let pool = Self::left_restriction_pool(g);
            if pool.is_empty() {
                (cov_a, sub_a)
            } else {
                let (cov_b, sub_b) = self.decay_sweep(g, &pool, levels, derive_seed(seed, 0xB));
                if cov_b > cov_a {
                    (cov_b, sub_b)
                } else {
                    (cov_a, sub_a)
                }
            }
        } else {
            (cov_a, sub_a)
        };
        let _ = best_cov;
        SpokesmanResult::from_subset(SolverKind::RandomDecay, g, best_sub)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_instance(seed: u64, s: usize, n: usize, p: f64) -> BipartiteGraph {
        let mut rng = rng_from_seed(seed);
        let mut edges = Vec::new();
        for u in 0..s {
            for w in 0..n {
                if rng.gen_bool(p) {
                    edges.push((u, w));
                }
            }
        }
        BipartiteGraph::from_edges(s, n, edges).unwrap()
    }

    #[test]
    fn star_fully_covered() {
        let g = BipartiteGraph::from_edges(1, 6, (0..6).map(|w| (0, w))).unwrap();
        let r = RandomDecaySolver::default().solve(&g, 1);
        assert_eq!(r.unique_coverage, 6);
    }

    #[test]
    fn empty_instances() {
        let g = BipartiteGraph::from_edges(0, 0, []).unwrap();
        assert_eq!(RandomDecaySolver::default().solve(&g, 0).unique_coverage, 0);
        let g = BipartiteGraph::from_edges(4, 4, []).unwrap();
        assert_eq!(RandomDecaySolver::default().solve(&g, 0).unique_coverage, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = random_instance(5, 12, 20, 0.3);
        let a = RandomDecaySolver::default().solve(&g, 77);
        let b = RandomDecaySolver::default().solve(&g, 77);
        assert_eq!(a.unique_coverage, b.unique_coverage);
        assert_eq!(a.subset.to_vec(), b.subset.to_vec());
    }

    #[test]
    fn different_seeds_still_meet_the_lemma_bound() {
        // Lemma 4.2 expectation bound (with its e^{-3}/2 constant):
        // coverage ≥ |N'| · e^{-3} / ⌈log 4δ_N⌉ is what a single level
        // achieves in expectation; the best-of sweep should clear the
        // conservative floor below on dense random instances.
        for seed in 0..10u64 {
            let g = random_instance(seed + 40, 16, 32, 0.35);
            let gamma = (0..g.num_right())
                .filter(|&w| g.right_degree(w) > 0)
                .count();
            let delta_n = g.num_edges() as f64 / gamma.max(1) as f64;
            let floor =
                (gamma as f64 * (-3.0f64).exp() / (2.0 * (2.0 * delta_n).log2().max(1.0))).floor();
            let r = RandomDecaySolver::default().solve(&g, seed);
            assert!(
                r.unique_coverage as f64 >= floor,
                "seed {seed}: coverage {} below conservative floor {floor}",
                r.unique_coverage
            );
        }
    }

    #[test]
    fn left_restriction_pool_covers_neighborhood() {
        let g = random_instance(9, 20, 10, 0.25);
        let pool = RandomDecaySolver::left_restriction_pool(&g);
        // The pool must cover every right vertex reachable from low-degree
        // left vertices that the greedy pass saw; in particular it is
        // non-empty whenever the graph has an edge from a low-degree vertex.
        if g.num_edges() > 0 {
            assert!(!pool.is_empty());
        }
        // Thinning rule: |S''| ≤ |Γ(S'')|.
        let covered = g.neighborhood_of_left_subset(&pool);
        assert!(pool.len() <= covered.len().max(1));
    }

    #[test]
    fn fast_configuration_is_cheaper_but_valid() {
        let g = random_instance(3, 10, 15, 0.3);
        let r = RandomDecaySolver::fast().solve(&g, 3);
        assert!(r.unique_coverage <= g.num_right());
        assert!(r.subset.iter().all(|u| u < g.num_left()));
    }

    #[test]
    fn solver_reports_its_kind() {
        assert_eq!(RandomDecaySolver::default().kind(), SolverKind::RandomDecay);
    }
}
