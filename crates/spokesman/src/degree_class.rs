//! The degree-class solver of Lemmas A.5–A.7 and Corollaries A.8–A.10.
//!
//! Lemma A.5 buckets the right side by degree class `[c^{i-1}, c^i)` and
//! shows that inside a single class a constant fraction `1/(2(1+c))` of the
//! class can be uniquely covered; choosing the largest class and the optimal
//! base `c ≈ 3.59112` yields Corollary A.7's bound
//! `|Γ¹_S(S')| ≥ 0.20087·|N|/log₂Δ`.
//!
//! Our solver follows that outline: for every degree class it builds the
//! restricted instance and solves it with Procedure Partition (which inside a
//! class — where degrees are within a factor `c` of one another — achieves
//! the constant-fraction guarantee), then returns the best subset over all
//! classes. A light Bernoulli sweep per class (probability `≈ c^{-i+1/2}`) is
//! mixed in as a tie-breaker, mirroring the probabilistic intuition behind
//! the lemma.

use crate::partition::procedure_partition;
use crate::solver::{SolverKind, SpokesmanResult, SpokesmanSolver};
use rand::Rng;
use wx_graph::degree::degree_class_buckets;
use wx_graph::random::{derive_seed, rng_from_seed};
use wx_graph::{BipartiteGraph, VertexSet};

/// The base `c` maximizing `f(c) = log₂c / (2(1+c))` (Corollary A.7).
pub const OPTIMAL_BASE: f64 = 3.59112;

/// The value `f(c*) ≈ 0.20087` attained at the optimal base.
pub const OPTIMAL_BASE_VALUE: f64 = 0.20087;

/// Degree-class solver (Lemmas A.5–A.7).
#[derive(Clone, Copy, Debug)]
pub struct DegreeClassSolver {
    /// The degree-class base `c > 1`.
    pub base: f64,
    /// Bernoulli samples per class used as a randomized tie-breaker
    /// (0 disables the randomized sweep, keeping the solver deterministic).
    pub random_trials_per_class: usize,
}

impl Default for DegreeClassSolver {
    fn default() -> Self {
        DegreeClassSolver {
            base: OPTIMAL_BASE,
            random_trials_per_class: 2,
        }
    }
}

impl DegreeClassSolver {
    /// A fully deterministic variant (no randomized sweep).
    pub fn deterministic(base: f64) -> Self {
        DegreeClassSolver {
            base,
            random_trials_per_class: 0,
        }
    }

    /// The per-class guarantee `1/(2(1+c))` of Lemma A.5.
    pub fn per_class_fraction(&self) -> f64 {
        1.0 / (2.0 * (1.0 + self.base))
    }

    /// The Corollary A.7 guarantee `log₂c/(2(1+c)) · |N| / log₂Δ` for an
    /// instance with maximum degree `delta` and `gamma` coverable right
    /// vertices.
    pub fn corollary_a7_guarantee(&self, gamma: usize, delta: usize) -> f64 {
        if delta <= 1 {
            return gamma as f64 * self.per_class_fraction();
        }
        let f = self.base.log2() / (2.0 * (1.0 + self.base));
        f * gamma as f64 / (delta as f64).log2()
    }
}

impl SpokesmanSolver for DegreeClassSolver {
    fn kind(&self) -> SolverKind {
        SolverKind::DegreeClass
    }

    fn solve(&self, g: &BipartiteGraph, seed: u64) -> SpokesmanResult {
        if g.num_edges() == 0 {
            return SpokesmanResult::from_subset(
                SolverKind::DegreeClass,
                g,
                VertexSet::empty(g.num_left()),
            );
        }
        let buckets = degree_class_buckets(g, self.base);
        let mut best_cov = 0usize;
        let mut best_subset = VertexSet::empty(g.num_left());

        for (i, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let candidates = VertexSet::from_iter(g.num_right(), bucket.iter().copied());
            // Deterministic core: Procedure Partition restricted to the class.
            let outcome = procedure_partition(g, &candidates);
            let cov = g.unique_coverage(&outcome.s_uni);
            if cov > best_cov {
                best_cov = cov;
                best_subset = outcome.s_uni.clone();
            }
            // Randomized sweep: sample left vertices with probability close
            // to the reciprocal of the class's typical degree.
            if self.random_trials_per_class > 0 {
                let p = self.base.powf(-(i as f64 + 0.5)).clamp(1e-9, 1.0);
                for t in 0..self.random_trials_per_class {
                    let mut rng = rng_from_seed(derive_seed(seed, ((i as u64) << 32) | t as u64));
                    let sample = VertexSet::from_iter(
                        g.num_left(),
                        (0..g.num_left()).filter(|_| rng.gen_bool(p)),
                    );
                    let cov = g.unique_coverage(&sample);
                    if cov > best_cov {
                        best_cov = cov;
                        best_subset = sample;
                    }
                }
            }
        }
        let _ = best_cov;
        SpokesmanResult::from_subset(SolverKind::DegreeClass, g, best_subset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_instance(seed: u64, s: usize, n: usize, p: f64) -> BipartiteGraph {
        let mut rng = rng_from_seed(seed);
        let mut edges = Vec::new();
        for u in 0..s {
            for w in 0..n {
                if rng.gen_bool(p) {
                    edges.push((u, w));
                }
            }
        }
        BipartiteGraph::from_edges(s, n, edges).unwrap()
    }

    #[test]
    fn optimal_base_maximizes_f() {
        let f = |c: f64| c.log2() / (2.0 * (1.0 + c));
        let at_opt = f(OPTIMAL_BASE);
        assert!((at_opt - OPTIMAL_BASE_VALUE).abs() < 1e-3);
        for c in [2.0, 3.0, 4.0, 5.0, 10.0] {
            assert!(f(c) <= at_opt + 1e-6, "f({c}) = {} exceeds optimum", f(c));
        }
    }

    #[test]
    fn star_fully_covered() {
        let g = BipartiteGraph::from_edges(1, 4, (0..4).map(|w| (0, w))).unwrap();
        let r = DegreeClassSolver::default().solve(&g, 0);
        assert_eq!(r.unique_coverage, 4);
    }

    #[test]
    fn deterministic_variant_is_reproducible_and_seed_independent() {
        let g = random_instance(11, 10, 24, 0.3);
        let s = DegreeClassSolver::deterministic(OPTIMAL_BASE);
        let a = s.solve(&g, 1);
        let b = s.solve(&g, 999);
        assert_eq!(a.unique_coverage, b.unique_coverage);
        assert_eq!(a.subset.to_vec(), b.subset.to_vec());
    }

    #[test]
    fn meets_corollary_a7_guarantee_on_random_instances() {
        let solver = DegreeClassSolver::default();
        for seed in 0..15u64 {
            let g = random_instance(seed + 70, 14, 30, 0.3);
            if g.num_edges() == 0 {
                continue;
            }
            let gamma = (0..g.num_right())
                .filter(|&w| g.right_degree(w) > 0)
                .count();
            let delta = g.max_degree();
            let guarantee = solver.corollary_a7_guarantee(gamma, delta);
            let r = solver.solve(&g, seed);
            assert!(
                r.unique_coverage as f64 >= guarantee.floor(),
                "seed {seed}: coverage {} below Corollary A.7 guarantee {guarantee:.2}",
                r.unique_coverage
            );
        }
    }

    #[test]
    fn skewed_degree_instance_prefers_a_single_class() {
        // Right side has one huge-degree vertex and many degree-1 vertices;
        // the degree-1 class alone already gives near-perfect coverage.
        let s = 8usize;
        let mut edges = Vec::new();
        for u in 0..s {
            edges.push((u, 0)); // vertex 0 has degree s
            edges.push((u, 1 + u)); // private neighbor
        }
        let g = BipartiteGraph::from_edges(s, s + 1, edges).unwrap();
        let r = DegreeClassSolver::default().solve(&g, 0);
        assert!(
            r.unique_coverage >= s,
            "coverage {} < {s}",
            r.unique_coverage
        );
    }

    #[test]
    fn edgeless_instance() {
        let g = BipartiteGraph::from_edges(3, 3, []).unwrap();
        let r = DegreeClassSolver::default().solve(&g, 0);
        assert_eq!(r.unique_coverage, 0);
        assert!(r.subset.is_empty());
    }

    #[test]
    fn per_class_fraction_matches_formula() {
        let s = DegreeClassSolver::default();
        assert!((s.per_class_fraction() - 1.0 / (2.0 * (1.0 + OPTIMAL_BASE))).abs() < 1e-12);
    }
}
