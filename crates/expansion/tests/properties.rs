//! Property-based tests for the expansion metrics: per-set definitions,
//! the Observation 2.1 sandwich, estimator soundness, and spectral bounds.

use proptest::prelude::*;
use wx_graph::{Graph, VertexSet};

fn edge_list(n: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0..n, 0..n), 0..(n * 3).max(1)).prop_map(move |pairs| {
        pairs
            .into_iter()
            .filter(|(u, v)| u != v)
            .collect::<Vec<_>>()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Per-set quantities match brute-force recomputation from the
    /// neighborhood definitions, and the Observation 2.1 sandwich holds with
    /// the exact wireless value.
    #[test]
    fn per_set_quantities_are_consistent(edges in edge_list(10),
                                         members in prop::collection::btree_set(0usize..10, 1..6)) {
        let g = Graph::from_edges(10, edges).unwrap();
        let s = VertexSet::from_iter(10, members.iter().copied());

        let beta = wx_expansion::ordinary::of_set(&g, &s);
        let beta_u = wx_expansion::unique::of_set(&g, &s);
        let (beta_w, witness) = wx_expansion::wireless::of_set_exact(&g, &s);

        let boundary = wx_graph::neighborhood::external_neighborhood(&g, &s).len() as f64;
        let unique = wx_graph::neighborhood::unique_neighborhood(&g, &s).len() as f64;
        prop_assert!((beta - boundary / s.len() as f64).abs() < 1e-12);
        prop_assert!((beta_u - unique / s.len() as f64).abs() < 1e-12);
        prop_assert!(beta + 1e-12 >= beta_w && beta_w + 1e-12 >= beta_u);
        // the wireless witness really achieves the claimed value
        let achieved = wx_graph::neighborhood::s_excluding_unique_coverage(&g, &s, &witness) as f64
            / s.len() as f64;
        prop_assert!((achieved - beta_w).abs() < 1e-12);
    }

    /// Exact minima are never larger than the value of any particular set
    /// (estimator soundness), and candidate pools never produce sets above
    /// the size cap.
    #[test]
    fn exact_minimum_is_a_lower_envelope(edges in edge_list(9), alpha in 0.2f64..0.9) {
        let g = Graph::from_edges(9, edges).unwrap();
        let max_size = ((alpha * 9.0).floor() as usize).clamp(1, 9);
        let engine = wx_expansion::MeasurementEngine::builder()
            .alpha(alpha)
            .strategy(wx_expansion::MeasureStrategy::Exact)
            .build();
        let exact = engine.measure(&g, &wx_expansion::Ordinary).unwrap();
        let exact_u = engine.measure(&g, &wx_expansion::UniqueNeighbor).unwrap();
        let exact_w = engine.measure(&g, &wx_expansion::Wireless::default()).unwrap();
        prop_assert!(exact.witness.len() <= max_size);
        // every candidate set in a generated pool dominates the exact minima
        let pool = wx_expansion::sampling::CandidateSets::generate(
            &g,
            &wx_expansion::sampling::SamplerConfig::light(alpha),
            3,
        );
        for s in &pool.sets {
            prop_assert!(s.len() <= max_size);
            prop_assert!(wx_expansion::ordinary::of_set(&g, s) + 1e-12 >= exact.value);
            prop_assert!(wx_expansion::unique::of_set(&g, s) + 1e-12 >= exact_u.value);
            prop_assert!(wx_expansion::wireless::of_set_exact(&g, s).0 + 1e-12 >= exact_w.value);
        }
        // and the graph-level sandwich holds
        prop_assert!(exact.value + 1e-12 >= exact_w.value);
        prop_assert!(exact_w.value + 1e-12 >= exact_u.value);
    }

    /// Spectral sanity on arbitrary graphs: λ₁ is at most Δ and at least the
    /// average degree, λ₂ ≤ λ₁, and both agree between the dense solver and
    /// power iteration.
    #[test]
    fn spectral_bounds_and_agreement(edges in edge_list(12), seed in 0u64..50) {
        let g = Graph::from_edges(12, edges).unwrap();
        if g.num_edges() == 0 {
            return Ok(());
        }
        let spectrum = wx_expansion::spectral::adjacency_spectrum_dense(&g);
        let l1 = spectrum[0];
        let l2 = spectrum.get(1).copied().unwrap_or(0.0);
        prop_assert!(l1 <= g.max_degree() as f64 + 1e-9);
        prop_assert!(l1 + 1e-9 >= g.average_degree());
        prop_assert!(l2 <= l1 + 1e-9);
        let (p1, p2) = wx_expansion::spectral::power_iteration_top_two(&g, seed);
        prop_assert!((p1 - l1).abs() < 1e-3, "λ₁ dense {l1} vs power {p1}");
        // power iteration can undershoot λ₂ when eigenvalues are clustered;
        // it must never overshoot λ₁ nor exceed the true λ₂ by more than noise
        prop_assert!(p2 <= l2 + 1e-3, "λ₂ power {p2} exceeds dense {l2}");
    }

    /// The MeasuredExpansion profile is internally consistent on arbitrary
    /// small graphs (exact mode).
    #[test]
    fn profile_internal_consistency(edges in edge_list(9)) {
        let g = Graph::from_edges(9, edges).unwrap();
        if g.num_vertices() == 0 {
            return Ok(());
        }
        let p = wx_expansion::profile::ExpansionProfile::measure(
            &g,
            &wx_expansion::profile::ProfileConfig::default(),
        );
        prop_assert!(p.ordinary.exact && p.wireless.exact);
        prop_assert!(p.satisfies_observation_2_1());
        prop_assert_eq!(p.max_degree, g.max_degree());
        prop_assert_eq!(p.num_edges, g.num_edges());
        if p.wireless.value > 0.0 {
            prop_assert!((p.wireless_loss - p.ordinary.value / p.wireless.value).abs() < 1e-9);
        }
    }

    /// Backend equivalence: all three expansion notions produce identical
    /// values, witnesses and certificates on a zero-copy `SubgraphView` vs
    /// the materialized `induced_subgraph` output — exhaustively (exact
    /// engine strategy) per random graph and random vertex subset.
    #[test]
    fn three_notions_agree_on_subgraph_view_vs_materialized(
        edges in edge_list(14),
        keep_raw in prop::collection::btree_set(0usize..14, 2..11),
    ) {
        use wx_expansion::engine::{MeasureStrategy, MeasurementEngine, Wireless};
        use wx_graph::SubgraphView;

        let g = Graph::from_edges(14, edges).unwrap();
        let keep = VertexSet::from_iter(14, keep_raw.iter().copied());
        let view = SubgraphView::new(&g, &keep);
        let (mat, _) = g.induced_subgraph(&keep);
        let engine = MeasurementEngine::builder()
            .alpha(0.5)
            .strategy(MeasureStrategy::Exact)
            .seed(5)
            .build();
        let on_view = engine.measure_all(&view, &Wireless::default()).unwrap();
        let on_mat = engine.measure_all(&mat, &Wireless::default()).unwrap();
        for (a, b) in [
            (&on_view.ordinary, &on_mat.ordinary),
            (&on_view.unique, &on_mat.unique),
            (&on_view.wireless, &on_mat.wireless),
        ] {
            prop_assert_eq!(a.value, b.value);
            prop_assert_eq!(a.witness.to_vec(), b.witness.to_vec());
            prop_assert_eq!(a.exact, b.exact);
            prop_assert_eq!(
                a.certificate.as_ref().map(|c| c.to_vec()),
                b.certificate.as_ref().map(|c| c.to_vec())
            );
        }
    }

    /// Backend equivalence: the three notions agree between an
    /// `ImplicitGraph` and its materialized family graph, in both exact and
    /// sampled engine modes (the candidate pools are seeded identically, so
    /// even sampled results must match exactly).
    #[test]
    fn three_notions_agree_on_implicit_vs_materialized(
        dim in 2usize..=3,
        sampled in prop::bool::ANY,
        seed in 0u64..1000,
    ) {
        use wx_expansion::engine::{MeasureStrategy, MeasurementEngine, Wireless};
        use wx_graph::view::{materialize, ImplicitGraph};

        let implicit = ImplicitGraph::hypercube(dim).unwrap();
        let mat = materialize(&implicit);
        let strategy = if sampled {
            MeasureStrategy::Sampled
        } else {
            MeasureStrategy::Exact
        };
        let engine = MeasurementEngine::builder()
            .alpha(0.5)
            .strategy(strategy)
            .seed(seed)
            .build();
        let on_implicit = engine.measure_all(&implicit, &Wireless::default()).unwrap();
        let on_mat = engine.measure_all(&mat, &Wireless::default()).unwrap();
        for (a, b) in [
            (&on_implicit.ordinary, &on_mat.ordinary),
            (&on_implicit.unique, &on_mat.unique),
            (&on_implicit.wireless, &on_mat.wireless),
        ] {
            prop_assert_eq!(a.value, b.value);
            prop_assert_eq!(a.witness.to_vec(), b.witness.to_vec());
        }
    }

    /// Backend equivalence for the out-of-core path: the three notions agree
    /// between an [`MmapGraph`] serving a `.wxg` file and the in-memory CSR
    /// it was written from — exhaustively, witnesses and certificates
    /// included.
    #[test]
    fn three_notions_agree_on_mmap_vs_in_memory_csr(
        edges in edge_list(12),
        seed in 0u64..1000,
    ) {
        use wx_expansion::engine::{MeasureStrategy, MeasurementEngine, Wireless};
        use wx_graph::MmapGraph;

        let g = Graph::from_edges(12, edges).unwrap();
        let dir = std::env::temp_dir()
            .join(format!("wx-expansion-mmap-prop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("case-{seed}.wxg"));
        g.write_wxg(&path).unwrap();
        let m = MmapGraph::open(&path).unwrap();

        let engine = MeasurementEngine::builder()
            .alpha(0.5)
            .strategy(MeasureStrategy::Exact)
            .seed(seed)
            .build();
        let on_mmap = engine.measure_all(&m, &Wireless::default()).unwrap();
        let on_csr = engine.measure_all(&g, &Wireless::default()).unwrap();
        for (a, b) in [
            (&on_mmap.ordinary, &on_csr.ordinary),
            (&on_mmap.unique, &on_csr.unique),
            (&on_mmap.wireless, &on_csr.wireless),
        ] {
            prop_assert_eq!(a.value, b.value);
            prop_assert_eq!(a.witness.to_vec(), b.witness.to_vec());
            prop_assert_eq!(a.exact, b.exact);
            prop_assert_eq!(
                a.certificate.as_ref().map(|c| c.to_vec()),
                b.certificate.as_ref().map(|c| c.to_vec())
            );
        }
        drop(m);
        std::fs::remove_file(&path).ok();
    }
}
