//! The unified expansion-measurement engine.
//!
//! # Contract
//!
//! All three of the paper's expansion notions are minima of a per-set
//! quantity over candidate sets `S` with `1 ≤ |S| ≤ ⌊α·n⌋`:
//!
//! * ordinary `β(G)`: `|Γ⁻(S)|/|S|` ([`Ordinary`]);
//! * unique-neighbor `βu(G)`: `|Γ¹(S)|/|S|` ([`UniqueNeighbor`]);
//! * wireless `βw(G)`: `max_{S' ⊆ S} |Γ¹_S(S')|/|S|` ([`Wireless`]).
//!
//! Historically each notion shipped its own `exact` / `estimate` /
//! `estimate_with_config` entry points; the only blessed way to compute a
//! graph-level expansion value is now one [`MeasurementEngine`] driving any
//! [`ExpansionMeasure`]. The engine owns the candidate-set
//! pool, decides between exhaustive enumeration and sampling per
//! [`MeasureStrategy`], fans the per-set evaluations out over `rayon`
//! (on by default — see [`MeasurementEngineBuilder::parallel`]), and returns
//! a unified [`Measurement`]. The per-notion modules retain only *per-set*
//! primitives (`ordinary::of_set`, `unique::of_set`, `wireless::of_set_exact`,
//! `wireless::of_set_lower_bound`) for callers that need set-level
//! quantities (e.g. the Observation 2.1 per-set sandwich).
//!
//! # Strategy selection rules
//!
//! * [`MeasureStrategy::Exact`] enumerates every non-empty `S` up to the size
//!   cap (feasible for `n ≤ 22` with any cap, or for larger `n` whenever the
//!   number of sets `Σ_k C(n, k)` stays under the enumeration budget — see
//!   [`crate::sampling::all_small_sets`]; panics when the enumeration would
//!   be astronomically large) and, for [`Wireless`], solves the inner
//!   maximization optimally (feasible for `|S| ≤ 25`). The result has
//!   `exact = true` and is ground truth.
//! * [`MeasureStrategy::Sampled`] evaluates the shared candidate pool
//!   generated from the engine's [`SamplerConfig`]. For [`Ordinary`] and
//!   [`UniqueNeighbor`] the result is an *upper bound* on the true minimum
//!   (every evaluated set certifies one); for [`Wireless`] the inner
//!   maximization uses the polynomial-time spokesman portfolio, so the
//!   estimate is neither a strict upper nor lower bound (see the
//!   [`crate::wireless`] module docs for the quantifier asymmetry).
//! * [`MeasureStrategy::Auto`] (the default, with `exact_up_to = 14`) picks
//!   `Exact` when `0 < n ≤ exact_up_to` and `Sampled` otherwise. This is the
//!   same threshold logic `ExpansionProfile` has always used, now in one
//!   place.
//!
//! Determinism: every randomized component is derived from the engine's
//! `seed` via `derive_seed`, so measurements are reproducible regardless of
//! the rayon thread schedule.
//!
//! # Performance: epoch-stamped scratch spaces
//!
//! Candidate evaluation is the engine's hot loop — an exact run visits every
//! set under the size cap and a profile sweep evaluates three measures over a
//! shared pool — so the per-set cost must be pure graph traversal. Each
//! [`ExpansionMeasure::evaluate`] call receives a borrowed
//! [`NeighborhoodScratch`]: the engine draws it from a per-rayon-worker pool
//! ([`with_thread_scratch`]), and the measures run their neighborhood
//! counting through its `count_*` kernels, which tag vertices with an epoch
//! stamp instead of allocating fresh sets and reset in O(1) by bumping the
//! epoch. The result: [`Ordinary`] and [`UniqueNeighbor`] perform **no heap
//! allocation per candidate** in steady state, and [`Wireless`] allocates
//! only the bipartite view its spokesman solvers need (the `Γ⁻(S)`
//! resolution inside that construction runs through the same scratch). See
//! `wx_graph::scratch` for the kernel itself.
//!
//! ```
//! use wx_expansion::engine::{MeasurementEngine, Ordinary, UniqueNeighbor, Wireless};
//! use wx_graph::Graph;
//!
//! let g = Graph::from_edges(8, (0..8).map(|i| (i, (i + 1) % 8))).unwrap();
//! let engine = MeasurementEngine::builder().alpha(0.5).seed(7).build();
//! let beta = engine.measure(&g, &Ordinary).unwrap();
//! let beta_w = engine.measure(&g, &Wireless::default()).unwrap();
//! let beta_u = engine.measure(&g, &UniqueNeighbor).unwrap();
//! assert!(beta.exact && beta_w.exact);
//! // Observation 2.1: β ≥ βw ≥ βu.
//! assert!(beta.value + 1e-9 >= beta_w.value);
//! assert!(beta_w.value + 1e-9 >= beta_u.value);
//! ```

use crate::sampling::{all_small_sets, CandidateSets, SamplerConfig};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use wx_graph::random::derive_seed;
use wx_graph::scratch::with_thread_scratch;
use wx_graph::view::materialize;
use wx_graph::{Graph, GraphView, NeighborhoodScratch, SubgraphView, VertexSet};
use wx_spokesman::PortfolioSolver;
use wx_trace::CounterId;

/// How a [`MeasurementEngine`] chooses its candidate sets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum MeasureStrategy {
    /// Enumerate every non-empty set up to the size cap (ground truth;
    /// requires the enumeration to fit the budget of
    /// [`crate::sampling::all_small_sets`]).
    Exact,
    /// Evaluate the sampled candidate pool.
    Sampled,
    /// `Exact` when `0 < n ≤ exact_up_to`, `Sampled` otherwise.
    Auto {
        /// The exhaustive-enumeration threshold.
        exact_up_to: usize,
    },
}

impl Default for MeasureStrategy {
    fn default() -> Self {
        MeasureStrategy::Auto { exact_up_to: 14 }
    }
}

/// How [`MeasurementEngine::measure_induced`] represents an induced
/// subgraph while measuring it.
///
/// Both representations produce **identical measurements** (the zero-copy
/// [`SubgraphView`] uses the exact labelling of
/// [`Graph::induced_subgraph`]); the policy is purely a time/space
/// trade-off. The `crates/bench` `materialize` sweep (committed as
/// `BENCH_materialize_policy.json`) measures it: small subsets are cheaper
/// through the view (materialization is pure overhead), large subsets are
/// cheaper materialized (the candidate loop's many neighborhood traversals
/// amortize the one-time CSR copy's locality win).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MaterializePolicy {
    /// Always copy the induced subgraph into a fresh CSR first.
    Always,
    /// Always measure through the zero-copy [`SubgraphView`].
    Never,
    /// Materialize iff the subset has at least `threshold` vertices.
    Auto {
        /// Subset size at which materialization starts to pay off.
        threshold: usize,
    },
}

/// Default [`MaterializePolicy::Auto`] threshold, taken from the measured
/// crossover in `BENCH_materialize_policy.json` (view wins below, CSR copy
/// wins at and above).
pub const DEFAULT_MATERIALIZE_THRESHOLD: usize = 1024;

impl Default for MaterializePolicy {
    fn default() -> Self {
        MaterializePolicy::Auto {
            threshold: DEFAULT_MATERIALIZE_THRESHOLD,
        }
    }
}

impl MaterializePolicy {
    /// Resolves the policy for a subset of `subset_len` vertices.
    pub fn materialize_for(self, subset_len: usize) -> bool {
        match self {
            MaterializePolicy::Always => true,
            MaterializePolicy::Never => false,
            MaterializePolicy::Auto { threshold } => subset_len >= threshold,
        }
    }
}

/// One measured expansion quantity, with provenance.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// The measured ratio (the minimum over evaluated candidate sets).
    pub value: f64,
    /// The candidate set attaining it.
    pub witness: VertexSet,
    /// `true` when the candidate enumeration was exhaustive *and* the
    /// per-set evaluation was exact, i.e. the value is ground truth.
    pub exact: bool,
    /// A measure-specific certificate for the witness, when one exists. For
    /// [`Wireless`] this is the transmitter subset `S' ⊆ S` realizing the
    /// inner maximum (or the portfolio's best `S'` in sampled mode); ordinary
    /// and unique-neighbor measures have no certificate beyond the witness.
    pub certificate: Option<VertexSet>,
}

/// The result of one per-set evaluation inside the engine.
#[derive(Clone, Debug)]
pub struct SetEvaluation {
    /// The per-set value of the measure.
    pub value: f64,
    /// Optional certificate (see [`Measurement::certificate`]).
    pub certificate: Option<VertexSet>,
}

impl SetEvaluation {
    /// A certificate-free evaluation.
    pub fn plain(value: f64) -> Self {
        SetEvaluation {
            value,
            certificate: None,
        }
    }
}

/// A per-set expansion quantity the engine can minimize over candidate sets.
///
/// Implementors only define the *set-level* evaluation; enumeration,
/// sampling, parallelism and witness tracking are the engine's job.
///
/// The trait is parameterized by the graph backend `G` (any
/// [`GraphView`]; defaults to the CSR [`Graph`], so `dyn ExpansionMeasure`
/// keeps meaning what it always did). The three built-in measures implement
/// it for **every** backend, which is what lets one engine measure CSR
/// graphs, zero-copy [`wx_graph::SubgraphView`]s and unmaterialized
/// [`wx_graph::ImplicitGraph`] families through the same code path.
pub trait ExpansionMeasure<G: GraphView + ?Sized = Graph>: Sync {
    /// Short name for reports ("ordinary", "unique", "wireless").
    fn name(&self) -> &'static str;

    /// Evaluates the measure on one candidate set.
    ///
    /// `exact` requests the exact per-set value (for measures whose set
    /// quantity is itself an optimization problem); implementations may
    /// panic if that is infeasible for `|s|`. With `exact = false` a
    /// certified lower bound on the set quantity is acceptable. `seed`
    /// drives any internal randomness.
    ///
    /// `scratch` is a borrowed [`NeighborhoodScratch`] the implementation
    /// should run its neighborhood counting through; the engine hands each
    /// rayon worker its per-thread scratch, which is what makes the candidate
    /// loop allocation-free in steady state. Implementations must not call
    /// [`with_thread_scratch`] themselves (the pool is already borrowed).
    fn evaluate(
        &self,
        g: &G,
        s: &VertexSet,
        exact: bool,
        seed: u64,
        scratch: &mut NeighborhoodScratch,
    ) -> SetEvaluation;

    /// `true` if `evaluate(.., exact = true, ..)` is feasible for sets of
    /// this size.
    fn exact_feasible_for(&self, set_size: usize) -> bool {
        let _ = set_size;
        true
    }
}

/// Names one of the paper's three expansion notions — the serializable
/// handle declarative callers (the `wx-lab` scenario specs, CLI flags) use
/// to pick an [`ExpansionMeasure`] without constructing one themselves.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NotionKind {
    /// Ordinary expansion `β` ([`Ordinary`]).
    Ordinary,
    /// Unique-neighbor expansion `βu` ([`UniqueNeighbor`]).
    Unique,
    /// Wireless expansion `βw` ([`Wireless`]).
    Wireless,
}

impl NotionKind {
    /// All three notions, in the paper's `β ≥ βw ≥ βu` presentation order.
    pub const ALL: [NotionKind; 3] = [
        NotionKind::Ordinary,
        NotionKind::Wireless,
        NotionKind::Unique,
    ];

    /// The short lowercase name used in reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            NotionKind::Ordinary => "ordinary",
            NotionKind::Unique => "unique",
            NotionKind::Wireless => "wireless",
        }
    }

    /// Parses a [`NotionKind::name`] string (case-insensitive).
    pub fn parse(s: &str) -> Option<NotionKind> {
        match s.to_ascii_lowercase().as_str() {
            "ordinary" | "beta" => Some(NotionKind::Ordinary),
            "unique" | "unique-neighbor" => Some(NotionKind::Unique),
            "wireless" => Some(NotionKind::Wireless),
            _ => None,
        }
    }

    /// Builds the measure this notion names, for any graph backend `G`
    /// (inferred from the engine call site; defaults to the CSR [`Graph`]).
    /// `fast` selects the cheap wireless portfolio ([`Wireless::fast`]) for
    /// inner loops; ordinary and unique measures are unaffected.
    pub fn measure<G: GraphView + ?Sized>(
        self,
        fast: bool,
    ) -> Box<dyn ExpansionMeasure<G> + Send + Sync> {
        match self {
            NotionKind::Ordinary => Box::new(Ordinary),
            NotionKind::Unique => Box::new(UniqueNeighbor),
            NotionKind::Wireless => Box::new(if fast {
                Wireless::fast()
            } else {
                Wireless::default()
            }),
        }
    }
}

impl std::fmt::Display for NotionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Ordinary expansion `|Γ⁻(S)|/|S|`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Ordinary;

impl<G: GraphView + ?Sized> ExpansionMeasure<G> for Ordinary {
    fn name(&self) -> &'static str {
        "ordinary"
    }
    fn evaluate(
        &self,
        g: &G,
        s: &VertexSet,
        _exact: bool,
        _seed: u64,
        scratch: &mut NeighborhoodScratch,
    ) -> SetEvaluation {
        SetEvaluation::plain(crate::ordinary::of_set_with(g, s, scratch))
    }
}

/// Unique-neighbor expansion `|Γ¹(S)|/|S|`.
#[derive(Clone, Copy, Debug, Default)]
pub struct UniqueNeighbor;

impl<G: GraphView + ?Sized> ExpansionMeasure<G> for UniqueNeighbor {
    fn name(&self) -> &'static str {
        "unique"
    }
    fn evaluate(
        &self,
        g: &G,
        s: &VertexSet,
        _exact: bool,
        _seed: u64,
        scratch: &mut NeighborhoodScratch,
    ) -> SetEvaluation {
        SetEvaluation::plain(crate::unique::of_set_with(g, s, scratch))
    }
}

/// Wireless expansion `max_{S' ⊆ S} |Γ¹_S(S')|/|S|`.
///
/// The inner maximization is the Spokesman Election problem: exact mode uses
/// the exponential [`wx_spokesman::ExactSolver`] (feasible for
/// `|S| ≤ exact_inner_up_to`), sampled mode a polynomial-time
/// [`PortfolioSolver`] lower bound.
pub struct Wireless {
    /// The polynomial-time solver portfolio used in sampled mode.
    pub portfolio: PortfolioSolver,
    /// Size limit for the exact inner solver.
    pub exact_inner_up_to: usize,
}

impl Default for Wireless {
    fn default() -> Self {
        Wireless {
            portfolio: PortfolioSolver::default(),
            exact_inner_up_to: 25,
        }
    }
}

impl Wireless {
    /// A cheaper variant using the fast portfolio (greedy + partition only).
    pub fn fast() -> Self {
        Wireless {
            portfolio: PortfolioSolver::fast(),
            exact_inner_up_to: 25,
        }
    }
}

impl<G: GraphView + ?Sized> ExpansionMeasure<G> for Wireless {
    fn name(&self) -> &'static str {
        "wireless"
    }

    fn evaluate(
        &self,
        g: &G,
        s: &VertexSet,
        exact: bool,
        seed: u64,
        scratch: &mut NeighborhoodScratch,
    ) -> SetEvaluation {
        let (value, certificate) = if exact {
            crate::wireless::of_set_exact_with(g, s, scratch)
        } else {
            crate::wireless::of_set_lower_bound_with(g, s, &self.portfolio, seed, scratch)
        };
        SetEvaluation {
            value,
            certificate: Some(certificate),
        }
    }

    fn exact_feasible_for(&self, set_size: usize) -> bool {
        set_size <= self.exact_inner_up_to
    }
}

/// Builder for [`MeasurementEngine`].
#[derive(Clone, Debug)]
pub struct MeasurementEngineBuilder {
    alpha: f64,
    strategy: MeasureStrategy,
    sampler: Option<SamplerConfig>,
    parallel: bool,
    seed: u64,
    materialize: MaterializePolicy,
}

impl MeasurementEngineBuilder {
    /// Sets the `α` size bound (fraction of `n`; default 0.5).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the exact-vs-sampled strategy (default `Auto { exact_up_to: 14 }`).
    pub fn strategy(mut self, strategy: MeasureStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Shorthand for `strategy(MeasureStrategy::Auto { exact_up_to })`.
    pub fn exact_up_to(mut self, exact_up_to: usize) -> Self {
        self.strategy = MeasureStrategy::Auto { exact_up_to };
        self
    }

    /// Overrides the sampler configuration (default: `SamplerConfig` with
    /// the engine's `alpha`). The engine's `alpha` (set via
    /// [`MeasurementEngineBuilder::alpha`], default 0.5) is authoritative:
    /// `build()` stamps it into the sampler, so the sampler's own `alpha`
    /// field is ignored and exact enumeration and sampling always apply the
    /// same size cap.
    pub fn sampler(mut self, sampler: SamplerConfig) -> Self {
        self.sampler = Some(sampler);
        self
    }

    /// Enables or disables rayon-parallel candidate evaluation (default on).
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Sets the base seed for all randomized components.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the induced-subgraph materialization policy used by
    /// [`MeasurementEngine::measure_induced`] (default:
    /// [`MaterializePolicy::Auto`] at the benchmarked threshold).
    pub fn materialize(mut self, policy: MaterializePolicy) -> Self {
        self.materialize = policy;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> MeasurementEngine {
        // the engine's alpha is authoritative: sync the sampler so the
        // exact and sampled paths can never apply different size caps
        let mut sampler = self.sampler.unwrap_or_default();
        sampler.alpha = self.alpha;
        MeasurementEngine {
            alpha: self.alpha,
            strategy: self.strategy,
            sampler,
            parallel: self.parallel,
            seed: self.seed,
            materialize: self.materialize,
        }
    }
}

/// The engine: owns candidate-set generation and evaluates any
/// [`ExpansionMeasure`] over it. See the module docs for the contract.
#[derive(Clone, Debug)]
pub struct MeasurementEngine {
    alpha: f64,
    strategy: MeasureStrategy,
    sampler: SamplerConfig,
    parallel: bool,
    seed: u64,
    materialize: MaterializePolicy,
}

impl Default for MeasurementEngine {
    fn default() -> Self {
        MeasurementEngine::builder().build()
    }
}

/// The three notions measured over one shared pool, directly comparable
/// set-by-set (Observation 2.1 holds per candidate).
#[derive(Clone, Debug)]
pub struct ExpansionTriple {
    /// Ordinary expansion `β`.
    pub ordinary: Measurement,
    /// Unique-neighbor expansion `βu`.
    pub unique: Measurement,
    /// Wireless expansion `βw`.
    pub wireless: Measurement,
}

impl MeasurementEngine {
    /// Starts a builder with the defaults (`α = 0.5`, auto strategy with
    /// `exact_up_to = 14`, parallel evaluation on, seed `0xC0FFEE`).
    pub fn builder() -> MeasurementEngineBuilder {
        MeasurementEngineBuilder {
            alpha: 0.5,
            strategy: MeasureStrategy::default(),
            sampler: None,
            parallel: true,
            seed: 0xC0FFEE,
            materialize: MaterializePolicy::default(),
        }
    }

    /// The `α` size bound.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The configured strategy.
    pub fn strategy(&self) -> MeasureStrategy {
        self.strategy
    }

    /// Whether candidate evaluation fans out over rayon.
    pub fn parallel(&self) -> bool {
        self.parallel
    }

    /// The base seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The induced-subgraph materialization policy.
    pub fn materialize_policy(&self) -> MaterializePolicy {
        self.materialize
    }

    /// `true` when the configured policy materializes a subset of
    /// `subset_len` vertices (see [`MaterializePolicy::materialize_for`]).
    pub fn should_materialize(&self, subset_len: usize) -> bool {
        self.materialize.materialize_for(subset_len)
    }

    /// Measures one notion on the subgraph of `base` induced by `subset`,
    /// letting the engine's [`MaterializePolicy`] pick the representation:
    /// a zero-copy [`SubgraphView`] or a materialized CSR copy. The two
    /// paths share the [`Graph::induced_subgraph`] labelling, so the result
    /// is **identical** either way — only the time/space profile differs.
    /// `fast` selects the cheap wireless portfolio, as in
    /// [`NotionKind::measure`].
    pub fn measure_induced<G: GraphView + Sync + ?Sized>(
        &self,
        base: &G,
        subset: &VertexSet,
        notion: NotionKind,
        fast: bool,
    ) -> Option<Measurement> {
        let view = SubgraphView::new(base, subset);
        if self.should_materialize(subset.len()) {
            wx_trace::count(CounterId::EngineInducedMaterialized, 1);
            let g = materialize(&view);
            self.measure(&g, notion.measure(fast).as_ref())
        } else {
            wx_trace::count(CounterId::EngineInducedViewed, 1);
            self.measure(&view, notion.measure(fast).as_ref())
        }
    }

    /// Resolves the strategy for a graph on `n` vertices.
    pub fn resolved_strategy(&self, n: usize) -> MeasureStrategy {
        match self.strategy {
            MeasureStrategy::Auto { exact_up_to } => {
                if n > 0 && n <= exact_up_to {
                    MeasureStrategy::Exact
                } else {
                    MeasureStrategy::Sampled
                }
            }
            other => other,
        }
    }

    /// Generates the engine's sampled candidate pool for `g` (shared across
    /// measures so their results are comparable set-by-set).
    pub fn candidate_pool<G: GraphView + ?Sized>(&self, g: &G) -> CandidateSets {
        let _span = wx_trace::span("engine.candidate_pool");
        let pool = CandidateSets::generate(g, &self.sampler, self.seed);
        wx_trace::count(CounterId::EnginePoolSets, pool.sets.len() as u64);
        pool
    }

    /// The maximum candidate-set size for a graph on `n` vertices
    /// (delegated to the sampler, whose `alpha` is kept in sync by the
    /// builder, so exact and sampled modes share one cap).
    fn max_set_size(&self, n: usize) -> usize {
        self.sampler.max_set_size(n)
    }

    /// Resolves the strategy for `g` and materializes the candidate sets it
    /// implies: the exhaustive enumeration (`exact = true`) or the sampled
    /// pool (`exact = false`). `None` for the empty graph.
    fn candidate_sets<G: GraphView + ?Sized>(&self, g: &G) -> Option<(Vec<VertexSet>, bool)> {
        let n = g.num_vertices();
        if n == 0 {
            return None;
        }
        Some(match self.resolved_strategy(n) {
            MeasureStrategy::Exact => {
                wx_trace::count(CounterId::EngineStrategyExact, 1);
                (all_small_sets(n, self.max_set_size(n)), true)
            }
            _ => {
                wx_trace::count(CounterId::EngineStrategySampled, 1);
                (self.candidate_pool(g).sets, false)
            }
        })
    }

    /// Measures one expansion notion on `g`. Returns `None` only for the
    /// empty graph (or an empty candidate pool).
    ///
    /// Each call materializes its candidate sets; when measuring several
    /// notions on one graph, use [`MeasurementEngine::measure_all`] (or an
    /// explicit [`MeasurementEngine::candidate_pool`] with
    /// [`MeasurementEngine::measure_with_pool`]) so the pool is generated
    /// once.
    pub fn measure<G, M>(&self, g: &G, measure: &M) -> Option<Measurement>
    where
        G: GraphView + Sync + ?Sized,
        M: ExpansionMeasure<G> + ?Sized,
    {
        let (sets, exact) = self.candidate_sets(g)?;
        self.minimize(g, measure, &sets, exact)
    }

    /// Measures one notion over an explicit candidate pool (always sampled
    /// semantics: `exact = false`).
    pub fn measure_with_pool<G, M>(
        &self,
        g: &G,
        measure: &M,
        pool: &CandidateSets,
    ) -> Option<Measurement>
    where
        G: GraphView + Sync + ?Sized,
        M: ExpansionMeasure<G> + ?Sized,
    {
        self.minimize(g, measure, &pool.sets, false)
    }

    /// Evaluates the measure on every set of `pool` (in pool order), in
    /// parallel when enabled. This is the escape hatch for experiment
    /// harnesses that need per-set statistics beyond the minimum.
    pub fn evaluate_pool<G, M>(
        &self,
        g: &G,
        measure: &M,
        pool: &CandidateSets,
    ) -> Vec<SetEvaluation>
    where
        G: GraphView + Sync + ?Sized,
        M: ExpansionMeasure<G> + ?Sized,
    {
        let seed = self.seed;
        let eval_one = |(i, s): (usize, &VertexSet)| {
            with_thread_scratch(g.num_vertices(), |scratch| {
                measure.evaluate(g, s, false, derive_seed(seed, i as u64), scratch)
            })
        };
        let _span = wx_trace::span("engine.evaluate_pool");
        wx_trace::count(CounterId::EngineSetsEvaluated, pool.sets.len() as u64);
        // Shielded: rayon may run the evaluations on worker threads *or* on
        // this thread (one-thread pools), so per-set counts inside the
        // measures must be dropped consistently to keep telemetry identical
        // across thread counts.
        wx_trace::shield(|| {
            if self.parallel {
                pool.sets.par_iter().enumerate().map(eval_one).collect()
            } else {
                pool.sets.iter().enumerate().map(eval_one).collect()
            }
        })
    }

    /// Measures several notions over one shared candidate enumeration/pool,
    /// returning measurements in `measures` order. `None` for the empty
    /// graph. This is the general form of [`MeasurementEngine::measure_all`]
    /// for callers that need an arbitrary subset of measures.
    pub fn measure_many<G: GraphView + Sync + ?Sized>(
        &self,
        g: &G,
        measures: &[&dyn ExpansionMeasure<G>],
    ) -> Option<Vec<Measurement>> {
        let (sets, exact) = self.candidate_sets(g)?;
        measures
            .iter()
            .map(|m| self.minimize(g, *m, &sets, exact))
            .collect()
    }

    /// Measures all three notions over one shared pool (or one shared exact
    /// enumeration) — the candidate sets are generated once, so the three
    /// results are comparable set-by-set. `None` for the empty graph.
    pub fn measure_all<G: GraphView + Sync + ?Sized>(
        &self,
        g: &G,
        wireless: &Wireless,
    ) -> Option<ExpansionTriple> {
        let (sets, exact) = self.candidate_sets(g)?;
        Some(ExpansionTriple {
            ordinary: self.minimize(g, &Ordinary, &sets, exact)?,
            unique: self.minimize(g, &UniqueNeighbor, &sets, exact)?,
            wireless: self.minimize(g, wireless, &sets, exact)?,
        })
    }

    /// Searches the candidate sets for one whose measured value falls below
    /// `threshold`, returning the first violating witness (pool order). A
    /// `None` result is evidence, not proof, unless the strategy resolved to
    /// `Exact`.
    pub fn find_violation<G, M>(&self, g: &G, measure: &M, threshold: f64) -> Option<Measurement>
    where
        G: GraphView + Sync + ?Sized,
        M: ExpansionMeasure<G> + ?Sized,
    {
        let _span = wx_trace::span("engine.find_violation");
        let (sets, exact) = self.candidate_sets(g)?;
        self.check_exact_feasible(measure, &sets, exact);
        let seed = self.seed;
        // Shielded like the other evaluation loops: the early-exit `find`
        // makes the number of per-set evaluations data-dependent, so counts
        // from inside the measures must never reach a report.
        wx_trace::shield(|| {
            sets.into_iter()
                .enumerate()
                .map(|(i, s)| {
                    let eval = with_thread_scratch(g.num_vertices(), |scratch| {
                        measure.evaluate(g, &s, exact, derive_seed(seed, i as u64), scratch)
                    });
                    Measurement {
                        value: eval.value,
                        witness: s,
                        exact,
                        certificate: eval.certificate,
                    }
                })
                .find(|m| m.value < threshold)
        })
    }

    /// Panics with an informative message when an exact evaluation would be
    /// infeasible for some candidate set (shared by every exact code path).
    fn check_exact_feasible<G: GraphView + ?Sized, M: ExpansionMeasure<G> + ?Sized>(
        &self,
        measure: &M,
        sets: &[VertexSet],
        exact: bool,
    ) {
        if exact {
            if let Some(s) = sets.iter().find(|s| !measure.exact_feasible_for(s.len())) {
                panic!(
                    "exact {} measurement infeasible for candidate set of size {}",
                    measure.name(),
                    s.len()
                );
            }
        }
    }

    /// The core minimization: evaluate every set (in parallel when enabled)
    /// and keep the smallest value; ties break toward the earlier set, so
    /// results are independent of the thread schedule.
    fn minimize<G, M>(
        &self,
        g: &G,
        measure: &M,
        sets: &[VertexSet],
        exact: bool,
    ) -> Option<Measurement>
    where
        G: GraphView + Sync + ?Sized,
        M: ExpansionMeasure<G> + ?Sized,
    {
        let _span = wx_trace::span("engine.minimize");
        self.check_exact_feasible(measure, sets, exact);
        wx_trace::count(CounterId::EngineSetsEvaluated, sets.len() as u64);
        let seed = self.seed;
        let eval_one = |(i, s): (usize, &VertexSet)| {
            // one scratch per rayon worker: candidate evaluation allocates
            // nothing for the counting measures in steady state
            let eval = with_thread_scratch(g.num_vertices(), |scratch| {
                measure.evaluate(g, s, exact, derive_seed(seed, i as u64), scratch)
            });
            (i, eval)
        };
        let keep_min = |a: (usize, SetEvaluation), b: (usize, SetEvaluation)| {
            if b.1.value < a.1.value || (b.1.value == a.1.value && b.0 < a.0) {
                b
            } else {
                a
            }
        };
        // Shielded: the evaluations run on rayon workers or (one-thread
        // pools) right here; counts from inside the measures — e.g. the
        // spokesman solves driving a wireless evaluation — must be dropped
        // consistently so telemetry is identical at every thread count.
        let best = wx_trace::shield(|| {
            if self.parallel {
                sets.par_iter()
                    .enumerate()
                    .map(eval_one)
                    .reduce_with(keep_min)
            } else {
                sets.iter().enumerate().map(eval_one).reduce(keep_min)
            }
        });
        best.map(|(i, eval)| Measurement {
            value: eval.value,
            witness: sets[i].clone(),
            exact,
            certificate: eval.certificate,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wx_graph::GraphBuilder;

    fn cycle(n: usize) -> Graph {
        Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n))).unwrap()
    }

    fn complete_plus(k: usize) -> Graph {
        let mut b = GraphBuilder::new(k + 1);
        for i in 0..k {
            for j in (i + 1)..k {
                b.add_edge(i, j).unwrap();
            }
        }
        b.add_edge(k, 0).unwrap();
        b.add_edge(k, 1).unwrap();
        b.build()
    }

    #[test]
    fn notion_kind_round_trips_and_measures() {
        for kind in NotionKind::ALL {
            assert_eq!(NotionKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(NotionKind::parse("WIRELESS"), Some(NotionKind::Wireless));
        assert!(NotionKind::parse("bogus").is_none());

        // the boxed measure drives the engine exactly like the concrete type
        let g = cycle(8);
        let engine = MeasurementEngine::builder().alpha(0.5).build();
        let direct = engine.measure(&g, &Ordinary).unwrap();
        let boxed = engine
            .measure(&g, NotionKind::Ordinary.measure(false).as_ref())
            .unwrap();
        assert_eq!(direct.value, boxed.value);

        let json = serde_json::to_string(&NotionKind::Wireless).unwrap();
        assert_eq!(json, "\"Wireless\"");
        let back: NotionKind = serde_json::from_str(&json).unwrap();
        assert_eq!(back, NotionKind::Wireless);
    }

    #[test]
    fn exact_matches_known_cycle_values() {
        let g = cycle(8);
        let engine = MeasurementEngine::builder().alpha(0.5).build();
        let m = engine.measure(&g, &Ordinary).unwrap();
        assert!(m.exact);
        assert!((m.value - 0.5).abs() < 1e-12);
        assert_eq!(m.witness.len(), 4);
        assert!(m.certificate.is_none());
    }

    #[test]
    fn wireless_measurement_carries_certificate() {
        let g = complete_plus(6);
        let engine = MeasurementEngine::builder().alpha(0.5).build();
        let m = engine.measure(&g, &Wireless::default()).unwrap();
        assert!(m.exact);
        assert!(m.value > 0.0);
        let cert = m.certificate.expect("wireless certificate");
        // the certificate is a transmitter subset of the witness
        assert!(cert.iter().all(|v| m.witness.contains(v)));
    }

    #[test]
    fn headline_phenomenon_on_c_plus() {
        // βu = 0 < βw on C⁺ — the paper's motivating separation.
        let g = complete_plus(6);
        let engine = MeasurementEngine::builder().alpha(0.5).build();
        let t = engine.measure_all(&g, &Wireless::default()).unwrap();
        assert_eq!(t.unique.value, 0.0);
        assert!(t.wireless.value > 0.0);
        assert!(t.ordinary.value + 1e-9 >= t.wireless.value);
    }

    #[test]
    fn sampled_mode_upper_bounds_exact_for_ordinary() {
        let g = cycle(12);
        let exact = MeasurementEngine::builder()
            .alpha(0.5)
            .strategy(MeasureStrategy::Exact)
            .build()
            .measure(&g, &Ordinary)
            .unwrap();
        let sampled = MeasurementEngine::builder()
            .alpha(0.5)
            .strategy(MeasureStrategy::Sampled)
            .seed(3)
            .build()
            .measure(&g, &Ordinary)
            .unwrap();
        assert!(exact.exact && !sampled.exact);
        assert!(sampled.value >= exact.value - 1e-12);
        // the adversarial samplers find the true minimum on a cycle
        assert!((sampled.value - exact.value).abs() < 1e-9);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let g = cycle(30);
        let base = MeasurementEngine::builder()
            .alpha(0.5)
            .strategy(MeasureStrategy::Sampled)
            .seed(11);
        for measure in [&Ordinary as &dyn ExpansionMeasure, &UniqueNeighbor] {
            let par = base
                .clone()
                .parallel(true)
                .build()
                .measure(&g, measure)
                .unwrap();
            let seq = base
                .clone()
                .parallel(false)
                .build()
                .measure(&g, measure)
                .unwrap();
            assert_eq!(par.value, seq.value);
            assert_eq!(par.witness.to_vec(), seq.witness.to_vec());
        }
        let w = Wireless::default();
        let par = base.clone().parallel(true).build().measure(&g, &w).unwrap();
        let seq = base
            .clone()
            .parallel(false)
            .build()
            .measure(&g, &w)
            .unwrap();
        assert_eq!(par.value, seq.value);
        assert_eq!(par.witness.to_vec(), seq.witness.to_vec());
    }

    #[test]
    fn builder_alpha_is_single_sourced() {
        // the engine alpha (default 0.5) overrides the sampler's own alpha,
        // so the exact and sampled paths can never apply different size caps
        let engine = MeasurementEngine::builder()
            .sampler(SamplerConfig::light(0.2))
            .build();
        assert!((engine.alpha() - 0.5).abs() < 1e-12);
        assert_eq!(engine.max_set_size(10), 5);
        // .alpha() governs both paths regardless of setter order
        let engine = MeasurementEngine::builder()
            .alpha(0.2)
            .sampler(SamplerConfig::default())
            .build();
        assert!((engine.alpha() - 0.2).abs() < 1e-12);
        assert_eq!(engine.max_set_size(10), 2);
    }

    #[test]
    fn auto_strategy_switches_on_size() {
        let engine = MeasurementEngine::builder().exact_up_to(10).build();
        assert_eq!(engine.resolved_strategy(8), MeasureStrategy::Exact);
        assert_eq!(engine.resolved_strategy(11), MeasureStrategy::Sampled);
        assert_eq!(engine.resolved_strategy(0), MeasureStrategy::Sampled);
    }

    #[test]
    fn empty_graph_measures_none() {
        let engine = MeasurementEngine::default();
        assert!(engine.measure(&Graph::empty(0), &Ordinary).is_none());
        assert!(engine
            .measure_all(&Graph::empty(0), &Wireless::default())
            .is_none());
    }

    #[test]
    fn find_violation_detects_low_expansion() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let engine = MeasurementEngine::builder().seed(5).build();
        // a path is a terrible expander
        assert!(engine.find_violation(&g, &Ordinary, 1.5).is_some());
        assert!(engine.find_violation(&g, &Ordinary, 0.0).is_none());
    }

    #[test]
    fn evaluate_pool_preserves_order_and_length() {
        let g = cycle(20);
        let engine = MeasurementEngine::builder().seed(2).build();
        let pool = engine.candidate_pool(&g);
        let evals = engine.evaluate_pool(&g, &Ordinary, &pool);
        assert_eq!(evals.len(), pool.len());
        // spot-check against the per-set primitive
        for (s, e) in pool.sets.iter().zip(evals.iter()).take(10) {
            assert_eq!(e.value, crate::ordinary::of_set(&g, s));
        }
    }

    #[test]
    fn materialize_policy_picks_the_cheaper_mode_on_both_sides() {
        // Decision test (not a timing test): the benchmarked default must
        // measure small subsets through the zero-copy view and large ones
        // through a materialized CSR — the cheaper mode on each side of the
        // crossover recorded in BENCH_materialize_policy.json.
        let engine = MeasurementEngine::builder().build();
        assert_eq!(
            engine.materialize_policy(),
            MaterializePolicy::Auto {
                threshold: DEFAULT_MATERIALIZE_THRESHOLD
            }
        );
        assert!(
            !engine.should_materialize(16),
            "below the crossover the view is cheaper"
        );
        assert!(
            !engine.should_materialize(DEFAULT_MATERIALIZE_THRESHOLD - 1),
            "still view-side just under the threshold"
        );
        assert!(
            engine.should_materialize(DEFAULT_MATERIALIZE_THRESHOLD),
            "at the crossover the CSR copy is cheaper"
        );
        assert!(engine.should_materialize(4096));

        let always = MeasurementEngine::builder()
            .materialize(MaterializePolicy::Always)
            .build();
        let never = MeasurementEngine::builder()
            .materialize(MaterializePolicy::Never)
            .build();
        assert!(always.should_materialize(1) && !never.should_materialize(1 << 20));
    }

    #[test]
    fn measure_induced_is_identical_under_every_policy() {
        // C30 with chords; subset = the even vertices.
        let mut b = GraphBuilder::new(30);
        for i in 0..30 {
            b.add_edge(i, (i + 1) % 30).unwrap();
            b.add_edge(i, (i + 7) % 30).unwrap();
        }
        let g = b.build();
        let subset = g.vertex_set((0..30).filter(|v| v % 2 == 0));

        for notion in NotionKind::ALL {
            let mut results = Vec::new();
            for policy in [
                MaterializePolicy::Always,
                MaterializePolicy::Never,
                MaterializePolicy::default(),
            ] {
                let engine = MeasurementEngine::builder()
                    .alpha(0.5)
                    .seed(11)
                    .materialize(policy)
                    .build();
                let m = engine
                    .measure_induced(&g, &subset, notion, true)
                    .expect("non-empty induced subgraph");
                results.push((m.value, m.witness.to_vec(), m.exact));
            }
            assert_eq!(
                results[0], results[1],
                "{notion}: materialized and view paths must agree exactly"
            );
            assert_eq!(results[1], results[2], "{notion}: auto must match both");
        }
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn exact_wireless_panics_beyond_inner_limit() {
        let g = cycle(16);
        let engine = MeasurementEngine::builder()
            .alpha(0.5)
            .strategy(MeasureStrategy::Exact)
            .build();
        // |S| up to 8 is fine; pretend the limit is tiny to hit the check
        let w = Wireless {
            portfolio: PortfolioSolver::fast(),
            exact_inner_up_to: 2,
        };
        let _ = engine.measure(&g, &w);
    }
}
