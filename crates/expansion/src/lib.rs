//! # wx-expansion
//!
//! Expansion metrics for the *Wireless Expanders* reproduction.
//!
//! The paper studies three expansion notions for a graph `G = (V, E)` and a
//! size bound `α`:
//!
//! * **ordinary** expansion `β(G)` — the minimum of `|Γ⁻(S)|/|S|` over all
//!   non-empty `S` with `|S| ≤ α·n` ([`ordinary`]);
//! * **unique-neighbor** expansion `βu(G)` — the minimum of `|Γ¹(S)|/|S|`
//!   ([`unique`]);
//! * **wireless** expansion `βw(G)` — the minimum over `S` of the *maximum*
//!   over `S' ⊆ S` of `|Γ¹_S(S')|/|S|` ([`wireless`]).
//!
//! Exact values require enumerating every candidate set `S` (and, for the
//! wireless case, every subset `S' ⊆ S`), which is only feasible for small
//! graphs; the [`sampling`] module provides random, BFS-ball and adversarial
//! candidate-set generators for estimating the minima on larger graphs, and
//! the [`wireless`] module uses the `wx-spokesman` portfolio to certify lower
//! bounds on the wireless expansion of each candidate set.
//!
//! The [`spectral`] module computes the second adjacency eigenvalue `λ₂`
//! needed by Lemma 3.1, and [`relations`] packages the paper's inequalities
//! (Observation 2.1, Lemmas 3.1/3.2, Theorems 1.1/1.2) as checkable
//! predicates. [`profile`] ties everything together into a single
//! [`profile::ExpansionProfile`] report for a graph.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ordinary;
pub mod profile;
pub mod relations;
pub mod sampling;
pub mod spectral;
pub mod unique;
pub mod wireless;

pub use profile::{ExpansionProfile, ProfileConfig};
pub use sampling::{CandidateSets, SamplerConfig};

/// A measured expansion value together with the witness set that attains it.
#[derive(Clone, Debug)]
pub struct ExpansionWitness {
    /// The measured expansion ratio.
    pub value: f64,
    /// The vertex set attaining it.
    pub witness: wx_graph::VertexSet,
}

impl ExpansionWitness {
    /// Creates a witness record.
    pub fn new(value: f64, witness: wx_graph::VertexSet) -> Self {
        ExpansionWitness { value, witness }
    }

    /// Keeps whichever of the two witnesses has the *smaller* value
    /// (expansion minima are what all three notions care about).
    pub fn min(self, other: ExpansionWitness) -> ExpansionWitness {
        if other.value < self.value {
            other
        } else {
            self
        }
    }
}
