//! # wx-expansion
//!
//! Expansion metrics for the *Wireless Expanders* reproduction.
//!
//! The paper studies three expansion notions for a graph `G = (V, E)` and a
//! size bound `α`:
//!
//! * **ordinary** expansion `β(G)` — the minimum of `|Γ⁻(S)|/|S|` over all
//!   non-empty `S` with `|S| ≤ α·n` ([`ordinary`]);
//! * **unique-neighbor** expansion `βu(G)` — the minimum of `|Γ¹(S)|/|S|`
//!   ([`unique`]);
//! * **wireless** expansion `βw(G)` — the minimum over `S` of the *maximum*
//!   over `S' ⊆ S` of `|Γ¹_S(S')|/|S|` ([`wireless`]).
//!
//! All three are minima over exponentially many candidate sets, so they share
//! one computation engine: the [`engine::MeasurementEngine`] drives any
//! [`engine::ExpansionMeasure`] ([`engine::Ordinary`],
//! [`engine::UniqueNeighbor`], [`engine::Wireless`]) over either an
//! exhaustive enumeration or the shared [`sampling`] candidate pool,
//! evaluates candidates in parallel via rayon (on by default), and returns a
//! unified [`engine::Measurement`] with value, witness, exactness flag and —
//! for the wireless measure — the certifying transmitter subset. The
//! per-notion modules keep only per-set primitives; see the [`engine`] module
//! docs for the full contract and strategy-selection rules.
//!
//! The [`spectral`] module computes the second adjacency eigenvalue `λ₂`
//! needed by Lemma 3.1, and [`relations`] packages the paper's inequalities
//! (Observation 2.1, Lemmas 3.1/3.2, Theorems 1.1/1.2) as checkable
//! predicates. [`profile`] ties everything together into a single
//! [`profile::ExpansionProfile`] report for a graph.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod ordinary;
pub mod profile;
pub mod relations;
pub mod sampling;
pub mod spectral;
pub mod unique;
pub mod wireless;

pub use engine::{
    ExpansionMeasure, ExpansionTriple, MeasureStrategy, Measurement, MeasurementEngine,
    MeasurementEngineBuilder, Ordinary, UniqueNeighbor, Wireless,
};
pub use profile::{ExpansionProfile, ProfileConfig, ProfileConfigBuilder};
pub use sampling::{CandidateSets, SamplerConfig};
