//! End-to-end expansion profiling of a graph.
//!
//! [`ExpansionProfile::measure`] computes, through one shared
//! [`MeasurementEngine`], everything the experiments need to compare a graph
//! against the paper's bounds: the (estimated or exact) ordinary, unique and
//! wireless expansions with witnesses, degree statistics, arboricity bounds,
//! the spectral gap (when affordable), and the Theorem 1.1 / Theorem 1.2
//! reference values.
//!
//! All three expansion minima run over one candidate pool through the
//! engine's per-worker [`wx_graph::NeighborhoodScratch`] pool, so a profile
//! sweep reuses the same scratch spaces across every candidate of every
//! measure — see the [`crate::engine`] performance notes.

use crate::engine::{MeasureStrategy, Measurement, MeasurementEngine, Wireless};
use crate::sampling::SamplerConfig;
use serde::{Deserialize, Serialize};
use wx_graph::arboricity::{arboricity_bounds, ArboricityBounds};
use wx_graph::degree::DegreeStats;
use wx_graph::Graph;

/// How the expansion minima should be computed. Construct via
/// [`ProfileConfig::builder`] (the struct is non-exhaustive so new knobs can
/// be added without breaking callers):
///
/// ```
/// use wx_expansion::ProfileConfig;
/// let cfg = ProfileConfig::builder().alpha(0.5).exact_up_to(14).build();
/// assert_eq!(cfg.exact_up_to, 14);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
#[non_exhaustive]
pub struct ProfileConfig {
    /// The `α` bound on candidate-set sizes (fraction of `n`).
    pub alpha: f64,
    /// Use exact enumeration when the graph has at most this many vertices.
    pub exact_up_to: usize,
    /// Sampler settings used above the exact threshold.
    pub random_sets_per_size: usize,
    /// Number of BFS-ball centers in the sampler.
    pub ball_centers: usize,
    /// Number of adversarial greedy growths in the sampler.
    pub greedy_growths: usize,
    /// Compute the dense spectral gap when the graph is regular and at most
    /// this large.
    pub spectral_up_to: usize,
    /// Evaluate candidate sets in parallel via rayon. Defaults to `true`
    /// when absent from serialized configs (the field post-dates the wire
    /// format).
    #[serde(default = "default_parallel")]
    pub parallel: bool,
    /// Seed for all randomized components.
    pub seed: u64,
}

fn default_parallel() -> bool {
    true
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            alpha: 0.5,
            exact_up_to: 14,
            random_sets_per_size: 16,
            ball_centers: 8,
            greedy_growths: 4,
            spectral_up_to: 1024,
            parallel: true,
            seed: 0xC0FFEE,
        }
    }
}

/// Builder for [`ProfileConfig`].
#[derive(Clone, Debug)]
pub struct ProfileConfigBuilder {
    cfg: ProfileConfig,
}

impl ProfileConfigBuilder {
    /// Sets the `α` size bound.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.cfg.alpha = alpha;
        self
    }
    /// Sets the exhaustive-enumeration threshold.
    pub fn exact_up_to(mut self, n: usize) -> Self {
        self.cfg.exact_up_to = n;
        self
    }
    /// Sets the number of uniform random sets per target size.
    pub fn random_sets_per_size(mut self, n: usize) -> Self {
        self.cfg.random_sets_per_size = n;
        self
    }
    /// Sets the number of BFS-ball centers.
    pub fn ball_centers(mut self, n: usize) -> Self {
        self.cfg.ball_centers = n;
        self
    }
    /// Sets the number of adversarial greedy growths.
    pub fn greedy_growths(mut self, n: usize) -> Self {
        self.cfg.greedy_growths = n;
        self
    }
    /// Sets the dense-spectrum size cap.
    pub fn spectral_up_to(mut self, n: usize) -> Self {
        self.cfg.spectral_up_to = n;
        self
    }
    /// Enables or disables rayon-parallel candidate evaluation.
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.cfg.parallel = parallel;
        self
    }
    /// Sets the base seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }
    /// Finishes the builder.
    pub fn build(self) -> ProfileConfig {
        self.cfg
    }
}

impl ProfileConfig {
    /// Starts a builder from the defaults.
    pub fn builder() -> ProfileConfigBuilder {
        ProfileConfigBuilder {
            cfg: ProfileConfig::default(),
        }
    }

    /// Turns this configuration back into a builder, for tweaking a preset
    /// (e.g. `ProfileConfig::light(0.5).to_builder().exact_up_to(12).build()`).
    pub fn to_builder(self) -> ProfileConfigBuilder {
        ProfileConfigBuilder { cfg: self }
    }

    /// A faster configuration for benches and sweeps over many graphs.
    pub fn light(alpha: f64) -> Self {
        ProfileConfig::builder()
            .alpha(alpha)
            .exact_up_to(10)
            .random_sets_per_size(4)
            .ball_centers(3)
            .greedy_growths(2)
            .spectral_up_to(256)
            .build()
    }

    fn sampler(&self) -> SamplerConfig {
        SamplerConfig {
            alpha: self.alpha,
            random_sets_per_size: self.random_sets_per_size,
            size_fractions: vec![0.1, 0.25, 0.5, 0.75, 1.0],
            ball_centers: self.ball_centers,
            greedy_growths: self.greedy_growths,
            include_singletons: true,
            large_graph_threshold: crate::sampling::LARGE_N_THRESHOLD,
        }
    }

    /// The [`MeasurementEngine`] this configuration describes. All profile
    /// measurements run through this engine; building it yourself gives
    /// access to the same candidate pool and per-measure control.
    pub fn engine(&self) -> MeasurementEngine {
        MeasurementEngine::builder()
            .alpha(self.alpha)
            .strategy(MeasureStrategy::Auto {
                exact_up_to: self.exact_up_to,
            })
            .sampler(self.sampler())
            .parallel(self.parallel)
            .seed(self.seed)
            .build()
    }
}

/// A single measured expansion quantity (value + witness size), serializable
/// for experiment reports.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MeasuredExpansion {
    /// The measured ratio.
    pub value: f64,
    /// Size of the witness set attaining it.
    pub witness_size: usize,
    /// Whether the value is exact (exhaustive enumeration) or an estimate.
    pub exact: bool,
}

impl MeasuredExpansion {
    fn from_measurement(m: &Measurement) -> Self {
        MeasuredExpansion {
            value: m.value,
            witness_size: m.witness.len(),
            exact: m.exact,
        }
    }
}

/// The complete expansion profile of a graph.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExpansionProfile {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of edges.
    pub num_edges: usize,
    /// Maximum degree `Δ`.
    pub max_degree: usize,
    /// Degree statistics of the whole graph.
    pub degree_stats: DegreeStats,
    /// Arboricity bounds (degeneracy sandwich).
    pub arboricity: ArboricityBounds,
    /// The `α` used for all three expansion minima.
    pub alpha: f64,
    /// Ordinary expansion `β`.
    pub ordinary: MeasuredExpansion,
    /// Unique-neighbor expansion `βu`.
    pub unique: MeasuredExpansion,
    /// Wireless expansion `βw` (portfolio-certified when not exact).
    pub wireless: MeasuredExpansion,
    /// Second adjacency eigenvalue, when computed (regular graphs only).
    pub lambda2: Option<f64>,
    /// Theorem 1.1 reference value `β/log₂(2·min{Δ/β, Δβ})` evaluated at the
    /// measured `β`.
    pub theorem_1_1_reference: f64,
    /// Lemma 3.2 reference value `2β − Δ` evaluated at the measured `β`.
    pub lemma_3_2_reference: f64,
    /// The ratio `β / βw` (the "wireless loss"); 1.0 means no loss.
    pub wireless_loss: f64,
}

impl ExpansionProfile {
    /// Measures the full profile of `g` under `config`.
    pub fn measure(g: &Graph, config: &ProfileConfig) -> Self {
        let n = g.num_vertices();
        let engine = config.engine();
        let wireless_measure = Wireless::default();

        let (ordinary, unique, wireless) = match engine.measure_all(g, &wireless_measure) {
            Some(triple) => (
                MeasuredExpansion::from_measurement(&triple.ordinary),
                MeasuredExpansion::from_measurement(&triple.unique),
                MeasuredExpansion::from_measurement(&triple.wireless),
            ),
            None => {
                let zero = MeasuredExpansion {
                    value: 0.0,
                    witness_size: 0,
                    exact: false,
                };
                (zero.clone(), zero.clone(), zero)
            }
        };

        let max_degree = g.max_degree();
        let lambda2 = if n > 0 && n <= config.spectral_up_to && g.is_regular(max_degree) {
            Some(crate::spectral::second_eigenvalue(g, config.seed))
        } else {
            None
        };

        let beta = ordinary.value;
        let theorem_1_1_reference = wx_spokesman::bounds::theorem_1_1_lower_bound(max_degree, beta);
        let lemma_3_2_reference = wx_spokesman::bounds::lemma_3_2_unique_bound(max_degree, beta);
        let wireless_loss = if wireless.value > 0.0 {
            beta / wireless.value
        } else {
            f64::INFINITY
        };

        ExpansionProfile {
            num_vertices: n,
            num_edges: g.num_edges(),
            max_degree,
            degree_stats: DegreeStats::of_graph(g),
            arboricity: arboricity_bounds(g),
            alpha: config.alpha,
            ordinary,
            unique,
            wireless,
            lambda2,
            theorem_1_1_reference,
            lemma_3_2_reference,
            wireless_loss,
        }
    }

    /// `true` if the measured values satisfy Observation 2.1
    /// (`β ≥ βw ≥ βu`), within a small tolerance.
    pub fn satisfies_observation_2_1(&self) -> bool {
        self.ordinary.value + 1e-9 >= self.wireless.value
            && self.wireless.value + 1e-9 >= self.unique.value
    }

    /// `true` if the measured wireless expansion clears the Theorem 1.1
    /// reference value scaled by `constant` (e.g. 0.25 for a conservative
    /// constant in small-instance tests).
    pub fn satisfies_theorem_1_1(&self, constant: f64) -> bool {
        self.wireless.value + 1e-9 >= constant * self.theorem_1_1_reference
    }

    /// One-line textual summary for logs and example programs.
    pub fn summary(&self) -> String {
        format!(
            "n={} m={} Δ={} | β={:.3} βu={:.3} βw={:.3} (loss {:.2}x) | thm1.1 ref {:.3}",
            self.num_vertices,
            self.num_edges,
            self.max_degree,
            self.ordinary.value,
            self.unique.value,
            self.wireless.value,
            self.wireless_loss,
            self.theorem_1_1_reference
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wx_graph::GraphBuilder;

    fn complete_plus(k: usize) -> Graph {
        let mut b = GraphBuilder::new(k + 1);
        for i in 0..k {
            for j in (i + 1)..k {
                b.add_edge(i, j).unwrap();
            }
        }
        b.add_edge(k, 0).unwrap();
        b.add_edge(k, 1).unwrap();
        b.build()
    }

    fn cycle(n: usize) -> Graph {
        Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n))).unwrap()
    }

    #[test]
    fn exact_profile_of_small_graph() {
        let g = complete_plus(6);
        let p = ExpansionProfile::measure(&g, &ProfileConfig::default());
        assert!(p.ordinary.exact && p.unique.exact && p.wireless.exact);
        assert!(p.satisfies_observation_2_1());
        // C⁺: unique expansion collapses to zero but wireless stays positive.
        assert_eq!(p.unique.value, 0.0);
        assert!(p.wireless.value > 0.0);
        assert!(p.wireless_loss.is_finite());
        assert!(p.summary().contains("βw"));
    }

    #[test]
    fn sampled_profile_of_larger_graph() {
        let g = cycle(40);
        let cfg = ProfileConfig::light(0.5)
            .to_builder()
            .exact_up_to(10)
            .build();
        let p = ExpansionProfile::measure(&g, &cfg);
        assert!(!p.ordinary.exact);
        assert!(p.satisfies_observation_2_1());
        // a cycle's expansion estimate should find an arc: β ≈ 2/|arc| ≤ 0.5
        assert!(p.ordinary.value <= 0.6);
        assert!(p.wireless.value > 0.0);
    }

    #[test]
    fn sequential_profile_matches_parallel() {
        let g = cycle(24);
        let par = ExpansionProfile::measure(
            &g,
            &ProfileConfig::builder()
                .exact_up_to(10)
                .parallel(true)
                .build(),
        );
        let seq = ExpansionProfile::measure(
            &g,
            &ProfileConfig::builder()
                .exact_up_to(10)
                .parallel(false)
                .build(),
        );
        assert_eq!(par.ordinary.value, seq.ordinary.value);
        assert_eq!(par.unique.value, seq.unique.value);
        assert_eq!(par.wireless.value, seq.wireless.value);
    }

    #[test]
    fn profile_detects_regular_graph_spectrum() {
        let g = cycle(12);
        let p = ExpansionProfile::measure(&g, &ProfileConfig::default());
        let l2 = p.lambda2.expect("cycle is regular and small");
        assert!((l2 - 2.0 * (2.0 * std::f64::consts::PI / 12.0).cos()).abs() < 1e-6);
        // irregular graph: no λ₂
        let g2 = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 2)]).unwrap();
        let p2 = ExpansionProfile::measure(&g2, &ProfileConfig::default());
        assert!(p2.lambda2.is_none());
    }

    #[test]
    fn profile_serializes() {
        let g = cycle(8);
        let p = ExpansionProfile::measure(&g, &ProfileConfig::default());
        let json = serde_json::to_string(&p).unwrap();
        assert!(json.contains("wireless"));
        let back: ExpansionProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back.num_vertices, 8);
    }

    #[test]
    fn config_json_without_parallel_field_still_deserializes() {
        // configs serialized before the `parallel` knob existed must load,
        // defaulting to parallel-on
        let mut json = serde_json::to_string(&ProfileConfig::default()).unwrap();
        json = json.replace("\"parallel\":true,", "");
        assert!(!json.contains("parallel"));
        let cfg: ProfileConfig = serde_json::from_str(&json).unwrap();
        assert!(cfg.parallel);
        assert_eq!(cfg.exact_up_to, ProfileConfig::default().exact_up_to);
    }

    #[test]
    fn theorem_1_1_satisfied_on_small_expander() {
        let g = complete_plus(6);
        let p = ExpansionProfile::measure(&g, &ProfileConfig::default());
        assert!(p.satisfies_theorem_1_1(1.0), "profile: {}", p.summary());
    }
}
