//! Unique-neighbor expansion `βu(G)` — per-set primitive (Section 2.2).
//!
//! `βu(G) = min { |Γ¹(S)|/|S| : S ⊆ V, 1 ≤ |S| ≤ α·n }`. Unlike ordinary
//! expansion, `βu` can collapse to zero on excellent expanders (Lemma 3.3 and
//! the `C⁺` example), which is exactly the phenomenon wireless expansion is
//! designed to sidestep. Graph-level minima are computed by the
//! [`crate::engine::MeasurementEngine`] driving the
//! [`crate::engine::UniqueNeighbor`] measure.

use wx_graph::neighborhood::unique_expansion_of_set;
use wx_graph::{GraphView, NeighborhoodScratch, VertexSet};

/// The unique-neighbor expansion of a single set, `|Γ¹(S)|/|S|`.
pub fn of_set<G: GraphView + ?Sized>(g: &G, s: &VertexSet) -> f64 {
    unique_expansion_of_set(g, s)
}

/// [`of_set`] against a caller-provided scratch — the allocation-free form
/// the [`crate::engine::UniqueNeighbor`] measure drives per candidate set.
pub fn of_set_with<G: GraphView + ?Sized>(
    g: &G,
    s: &VertexSet,
    scratch: &mut NeighborhoodScratch,
) -> f64 {
    scratch.unique_expansion(g, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{MeasurementEngine, UniqueNeighbor};
    use crate::sampling::{CandidateSets, SamplerConfig};
    use wx_graph::Graph;
    use wx_graph::GraphBuilder;

    fn complete_plus(k: usize) -> Graph {
        // complete graph on k vertices + source s0 = vertex k adjacent to 0, 1
        let mut b = GraphBuilder::new(k + 1);
        for i in 0..k {
            for j in (i + 1)..k {
                b.add_edge(i, j).unwrap();
            }
        }
        b.add_edge(k, 0).unwrap();
        b.add_edge(k, 1).unwrap();
        b.build()
    }

    #[test]
    fn unique_expansion_can_vanish_on_good_expanders() {
        // The C⁺ example: the set {x, y, s0} has no unique neighbors.
        let g = complete_plus(6);
        let engine = MeasurementEngine::builder().alpha(0.5).build();
        let m = engine.measure(&g, &UniqueNeighbor).unwrap();
        assert_eq!(m.value, 0.0);
        // the witness must indeed have zero unique neighbors
        assert_eq!(
            wx_graph::neighborhood::unique_neighborhood(&g, &m.witness).len(),
            0
        );
    }

    #[test]
    fn unique_vs_ordinary_ordering_per_set() {
        // Observation 2.1 (per set): |Γ¹(S)| ≤ |Γ⁻(S)|.
        let g = complete_plus(5);
        let pool = CandidateSets::generate(&g, &SamplerConfig::default(), 2);
        for s in &pool.sets {
            assert!(of_set(&g, s) <= crate::ordinary::of_set(&g, s) + 1e-12);
        }
    }

    #[test]
    fn unique_expansion_of_perfect_matching() {
        let g = Graph::from_edges(6, [(0, 3), (1, 4), (2, 5)]).unwrap();
        // Singletons each have exactly one (unique) external neighbor.
        let m = MeasurementEngine::builder()
            .alpha(1.0 / 6.0)
            .build()
            .measure(&g, &UniqueNeighbor)
            .unwrap();
        assert!((m.value - 1.0).abs() < 1e-12);
        // But once whole matched pairs fit under the size cap, a pair like
        // {0, 3} has an empty external neighborhood, so βu collapses to 0.
        let m = MeasurementEngine::builder()
            .alpha(0.5)
            .build()
            .measure(&g, &UniqueNeighbor)
            .unwrap();
        assert_eq!(m.value, 0.0);
        assert_eq!(m.witness.len(), 2);
    }

    #[test]
    fn engine_estimate_upper_bounds_exact() {
        let g = complete_plus(5);
        let ex = MeasurementEngine::builder()
            .alpha(0.5)
            .strategy(crate::engine::MeasureStrategy::Exact)
            .build()
            .measure(&g, &UniqueNeighbor)
            .unwrap();
        let est = MeasurementEngine::builder()
            .alpha(0.5)
            .strategy(crate::engine::MeasureStrategy::Sampled)
            .seed(9)
            .build()
            .measure(&g, &UniqueNeighbor)
            .unwrap();
        assert!(est.value >= ex.value - 1e-12);
    }

    #[test]
    fn empty_graph() {
        let engine = MeasurementEngine::default();
        assert!(engine.measure(&Graph::empty(0), &UniqueNeighbor).is_none());
    }
}
