//! Unique-neighbor expansion `βu(G)` (Section 2.2).
//!
//! `βu(G) = min { |Γ¹(S)|/|S| : S ⊆ V, 1 ≤ |S| ≤ α·n }`. Unlike ordinary
//! expansion, `βu` can collapse to zero on excellent expanders (Lemma 3.3 and
//! the `C⁺` example), which is exactly the phenomenon wireless expansion is
//! designed to sidestep.

use crate::sampling::{all_small_sets, CandidateSets, SamplerConfig};
use crate::ExpansionWitness;
use rayon::prelude::*;
use wx_graph::neighborhood::unique_expansion_of_set;
use wx_graph::{Graph, VertexSet};

/// The unique-neighbor expansion of a single set, `|Γ¹(S)|/|S|`.
pub fn of_set(g: &Graph, s: &VertexSet) -> f64 {
    unique_expansion_of_set(g, s)
}

/// Exact unique-neighbor expansion by enumeration (graphs of ≤ 22 vertices).
pub fn exact(g: &Graph, alpha: f64) -> Option<ExpansionWitness> {
    let n = g.num_vertices();
    if n == 0 {
        return None;
    }
    let max_size = ((alpha * n as f64).floor() as usize).clamp(1, n);
    let sets = all_small_sets(n, max_size);
    sets.into_par_iter()
        .map(|s| {
            let v = unique_expansion_of_set(g, &s);
            ExpansionWitness::new(v, s)
        })
        .reduce_with(|a, b| a.min(b))
}

/// Estimated unique-neighbor expansion over a candidate pool (an upper bound
/// on the true `βu(G)`).
pub fn estimate(g: &Graph, candidates: &CandidateSets) -> Option<ExpansionWitness> {
    candidates
        .sets
        .par_iter()
        .map(|s| ExpansionWitness::new(unique_expansion_of_set(g, s), s.clone()))
        .reduce_with(|a, b| a.min(b))
}

/// Convenience: generate a candidate pool with `config` and estimate.
pub fn estimate_with_config(
    g: &Graph,
    config: &SamplerConfig,
    seed: u64,
) -> Option<ExpansionWitness> {
    let pool = CandidateSets::generate(g, config, seed);
    estimate(g, &pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wx_graph::GraphBuilder;

    fn complete_plus(k: usize) -> Graph {
        // complete graph on k vertices + source s0 = vertex k adjacent to 0, 1
        let mut b = GraphBuilder::new(k + 1);
        for i in 0..k {
            for j in (i + 1)..k {
                b.add_edge(i, j).unwrap();
            }
        }
        b.add_edge(k, 0).unwrap();
        b.add_edge(k, 1).unwrap();
        b.build()
    }

    #[test]
    fn unique_expansion_can_vanish_on_good_expanders() {
        // The C⁺ example: the set {x, y, s0} has no unique neighbors.
        let g = complete_plus(6);
        let w = exact(&g, 0.5).unwrap();
        assert_eq!(w.value, 0.0);
        // the witness must indeed have zero unique neighbors
        assert_eq!(
            wx_graph::neighborhood::unique_neighborhood(&g, &w.witness).len(),
            0
        );
    }

    #[test]
    fn unique_vs_ordinary_ordering_per_set() {
        // Observation 2.1 (per set): |Γ¹(S)| ≤ |Γ⁻(S)|.
        let g = complete_plus(5);
        let pool = CandidateSets::generate(&g, &SamplerConfig::default(), 2);
        for s in &pool.sets {
            assert!(of_set(&g, s) <= crate::ordinary::of_set(&g, s) + 1e-12);
        }
    }

    #[test]
    fn estimate_upper_bounds_exact() {
        let g = complete_plus(5);
        let ex = exact(&g, 0.5).unwrap();
        let est = estimate_with_config(&g, &SamplerConfig::default(), 9).unwrap();
        assert!(est.value >= ex.value - 1e-12);
    }

    #[test]
    fn unique_expansion_of_perfect_matching() {
        let g = Graph::from_edges(6, [(0, 3), (1, 4), (2, 5)]).unwrap();
        // Singletons each have exactly one (unique) external neighbor.
        let w = exact(&g, 1.0 / 6.0).unwrap();
        assert!((w.value - 1.0).abs() < 1e-12);
        // But once whole matched pairs fit under the size cap, a pair like
        // {0, 3} has an empty external neighborhood, so βu collapses to 0.
        let w = exact(&g, 0.5).unwrap();
        assert_eq!(w.value, 0.0);
        assert_eq!(w.witness.len(), 2);
    }

    #[test]
    fn empty_graph() {
        assert!(exact(&Graph::empty(0), 0.5).is_none());
    }
}
