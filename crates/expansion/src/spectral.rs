//! Spectral quantities of the adjacency matrix (Lemma 3.1).
//!
//! Lemma 3.1 relates the unique-neighbor expansion of a `d`-regular graph to
//! its ordinary expansion through the spectral gap `d − λ₂`, where `λ₂` is
//! the second-largest adjacency eigenvalue. This module computes adjacency
//! spectra two ways:
//!
//! * a dense symmetric eigendecomposition via `nalgebra` for graphs up to a
//!   few thousand vertices ([`adjacency_spectrum_dense`]);
//! * deflated power iteration for larger graphs
//!   ([`second_eigenvalue`]), which only touches the CSR
//!   adjacency lists and never materializes the matrix.

use nalgebra::{DMatrix, DVector};
use wx_graph::Graph;

/// Largest practical size for the dense eigendecomposition.
pub const DENSE_LIMIT: usize = 2048;

/// The full adjacency spectrum (eigenvalues sorted in decreasing order) via a
/// dense symmetric eigendecomposition.
///
/// # Panics
/// Panics if the graph has more than [`DENSE_LIMIT`] vertices.
pub fn adjacency_spectrum_dense(g: &Graph) -> Vec<f64> {
    let n = g.num_vertices();
    assert!(
        n <= DENSE_LIMIT,
        "dense spectrum limited to {DENSE_LIMIT} vertices, got {n}"
    );
    if n == 0 {
        return Vec::new();
    }
    let mut m = DMatrix::<f64>::zeros(n, n);
    for (u, v) in g.edges() {
        m[(u, v)] = 1.0;
        m[(v, u)] = 1.0;
    }
    let eig = m.symmetric_eigen();
    let mut vals: Vec<f64> = eig.eigenvalues.iter().copied().collect();
    vals.sort_by(|a, b| b.partial_cmp(a).expect("adjacency eigenvalues are finite"));
    vals
}

/// The two largest adjacency eigenvalues `(λ₁, λ₂)` via the dense solver for
/// small graphs and deflated power iteration otherwise.
pub fn top_two_eigenvalues(g: &Graph, seed: u64) -> (f64, f64) {
    let n = g.num_vertices();
    if n == 0 {
        return (0.0, 0.0);
    }
    if n <= DENSE_LIMIT {
        let vals = adjacency_spectrum_dense(g);
        let l1 = vals.first().copied().unwrap_or(0.0);
        let l2 = vals.get(1).copied().unwrap_or(0.0);
        (l1, l2)
    } else {
        power_iteration_top_two(g, seed)
    }
}

/// The second-largest adjacency eigenvalue `λ₂`.
pub fn second_eigenvalue(g: &Graph, seed: u64) -> f64 {
    top_two_eigenvalues(g, seed).1
}

/// Deflated power iteration for `(λ₁, λ₂)` on graphs of any size.
/// Exposed for testing against the dense solver.
pub fn power_iteration_top_two(g: &Graph, seed: u64) -> (f64, f64) {
    let n = g.num_vertices();
    if n == 0 {
        return (0.0, 0.0);
    }
    let iters = 400usize;
    let mut rng = wx_graph::random::rng_from_seed(seed);
    let random_vec = |rng: &mut wx_graph::random::WxRng| {
        use rand::Rng;
        DVector::<f64>::from_iterator(n, (0..n).map(|_| rng.gen_range(-1.0..1.0)))
    };
    let mat_vec = |x: &DVector<f64>| -> DVector<f64> {
        let mut y = DVector::<f64>::zeros(n);
        for v in 0..n {
            let mut acc = 0.0;
            for &u in g.neighbors(v) {
                acc += x[u];
            }
            y[v] = acc;
        }
        y
    };

    // Both stages iterate on the shifted matrix A + Δ·I: adjacency spectra
    // lie in [−Δ, Δ], so the shift makes the matrix positive semidefinite and
    // power iteration converges to the *algebraically* largest eigenvalues
    // even on bipartite graphs where |λ_min| = λ₁ would otherwise cause the
    // unshifted iteration to oscillate.
    let shift = g.max_degree() as f64;

    // λ₁ via power iteration on A + Δ·I.
    let mut x = random_vec(&mut rng);
    if x.norm() == 0.0 {
        x = DVector::from_element(n, 1.0);
    }
    x /= x.norm();
    let mut lambda1_shifted = 0.0;
    for _ in 0..iters {
        let mut y = mat_vec(&x);
        y += &x * shift;
        let norm = y.norm();
        if norm < 1e-14 {
            lambda1_shifted = 0.0;
            break;
        }
        lambda1_shifted = x.dot(&y);
        x = y / norm;
    }
    let lambda1 = lambda1_shifted - shift;
    let v1 = x.clone();

    // λ₂ via power iteration on A + Δ·I orthogonal to v1 (deflation).
    let mut y = random_vec(&mut rng);
    y -= &v1 * v1.dot(&y);
    if y.norm() < 1e-12 {
        y = DVector::from_element(n, 1.0);
        y -= &v1 * v1.dot(&y);
    }
    if y.norm() < 1e-12 {
        return (lambda1, 0.0);
    }
    y /= y.norm();
    let mut lambda2_shifted = 0.0;
    for _ in 0..iters {
        let mut z = mat_vec(&y);
        z += &y * shift;
        // re-orthogonalize against v1 to fight numerical drift
        z -= &v1 * v1.dot(&z);
        let norm = z.norm();
        if norm < 1e-14 {
            lambda2_shifted = 0.0;
            break;
        }
        lambda2_shifted = y.dot(&z);
        y = z / norm;
    }
    (lambda1, lambda2_shifted - shift)
}

/// The spectral gap `d − λ₂` of a `d`-regular graph; `None` if the graph is
/// not regular.
pub fn spectral_gap_regular(g: &Graph, seed: u64) -> Option<f64> {
    let d = g.max_degree();
    if !g.is_regular(d) {
        return None;
    }
    Some(d as f64 - second_eigenvalue(g, seed))
}

/// Evaluates the Lemma 3.1 lower bound on the ordinary expansion of a
/// `d`-regular `(αu, βu)`-unique expander:
/// `β ≥ (1 − 1/d)·βu + (d − λ₂)(1 − αu)/d`.
/// Returns `None` if the graph is not regular.
pub fn lemma_3_1_bound(g: &Graph, alpha_u: f64, beta_u: f64, seed: u64) -> Option<f64> {
    let d = g.max_degree();
    if d == 0 || !g.is_regular(d) {
        return None;
    }
    let lambda2 = second_eigenvalue(g, seed);
    Some(wx_spokesman::bounds::lemma_3_1_expansion_bound(
        d, lambda2, alpha_u, beta_u,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wx_graph::GraphBuilder;

    fn complete(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                b.add_edge(i, j).unwrap();
            }
        }
        b.build()
    }

    fn cycle(n: usize) -> Graph {
        Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n))).unwrap()
    }

    #[test]
    fn spectrum_of_complete_graph() {
        // K_n has eigenvalues n-1 (once) and -1 (n-1 times).
        let g = complete(6);
        let vals = adjacency_spectrum_dense(&g);
        assert!((vals[0] - 5.0).abs() < 1e-9);
        assert!((vals[1] + 1.0).abs() < 1e-9);
        assert!((vals[5] + 1.0).abs() < 1e-9);
    }

    #[test]
    fn spectrum_of_cycle() {
        // C_n eigenvalues are 2cos(2πk/n); λ₁ = 2, λ₂ = 2cos(2π/n).
        let n = 8;
        let g = cycle(n);
        let (l1, l2) = top_two_eigenvalues(&g, 1);
        assert!((l1 - 2.0).abs() < 1e-9);
        let expected = 2.0 * (2.0 * std::f64::consts::PI / n as f64).cos();
        assert!(
            (l2 - expected).abs() < 1e-6,
            "λ₂ = {l2}, expected {expected}"
        );
    }

    #[test]
    fn power_iteration_agrees_with_dense() {
        let g = complete(10);
        let (l1d, l2d) = top_two_eigenvalues(&g, 3);
        let (l1p, l2p) = power_iteration_top_two(&g, 3);
        assert!((l1d - l1p).abs() < 1e-6, "λ₁ dense {l1d} vs power {l1p}");
        assert!((l2d - l2p).abs() < 1e-4, "λ₂ dense {l2d} vs power {l2p}");

        let g = cycle(16);
        let (l1d, l2d) = {
            let v = adjacency_spectrum_dense(&g);
            (v[0], v[1])
        };
        let (l1p, l2p) = power_iteration_top_two(&g, 5);
        assert!((l1d - l1p).abs() < 1e-4);
        assert!((l2d - l2p).abs() < 1e-3);
    }

    #[test]
    fn spectral_gap_of_complete_graph() {
        let g = complete(8);
        let gap = spectral_gap_regular(&g, 0).unwrap();
        assert!((gap - 8.0).abs() < 1e-6); // d - λ₂ = 7 - (-1) = 8
    }

    #[test]
    fn spectral_gap_requires_regularity() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!(spectral_gap_regular(&g, 0).is_none());
        assert!(lemma_3_1_bound(&g, 0.1, 1.0, 0).is_none());
    }

    #[test]
    fn lemma_3_1_bound_on_complete_graph() {
        // K8: d = 7, λ₂ = -1. With αu = 1/8 and βu = 0 the bound is
        // (d - λ₂)(1 - αu)/d = 8·(7/8)/7 = 1.
        let g = complete(8);
        let b = lemma_3_1_bound(&g, 1.0 / 8.0, 0.0, 0).unwrap();
        assert!((b - 1.0).abs() < 1e-6);
        // And the true expansion for sets of size ≤ 1 is 7 ≥ 1: bound holds.
        let measured = crate::engine::MeasurementEngine::builder()
            .alpha(1.0 / 8.0)
            .build()
            .measure(&g, &crate::engine::Ordinary)
            .unwrap()
            .value;
        assert!(measured + 1e-9 >= b);
    }

    #[test]
    fn empty_graph_spectrum() {
        let g = Graph::empty(0);
        assert!(adjacency_spectrum_dense(&g).is_empty());
        assert_eq!(top_two_eigenvalues(&g, 0), (0.0, 0.0));
    }

    #[test]
    fn bipartite_negative_eigenvalue_does_not_confuse_lambda2() {
        // Complete bipartite K_{3,3}: eigenvalues 3, 0 (x4), -3.
        let mut b = GraphBuilder::new(6);
        for i in 0..3 {
            for j in 3..6 {
                b.add_edge(i, j).unwrap();
            }
        }
        let g = b.build();
        let vals = adjacency_spectrum_dense(&g);
        assert!((vals[0] - 3.0).abs() < 1e-9);
        assert!(vals[1].abs() < 1e-9);
        let (_, l2p) = power_iteration_top_two(&g, 11);
        assert!(l2p.abs() < 1e-3, "power iteration λ₂ = {l2p}, expected ≈ 0");
    }
}
