//! The paper's inequalities as checkable predicates.
//!
//! Each function takes *measured* quantities (per-set or per-graph) and
//! evaluates one of the paper's relations, returning a [`RelationCheck`] with
//! the two sides of the inequality so experiment harnesses can report how
//! much slack there is. These are used by the integration tests (Observation
//! 2.1, Lemma 3.2, Theorem 1.1) and by the E1–E6 experiment binaries.

use serde::{Deserialize, Serialize};
use wx_graph::{Graph, VertexSet};

/// The outcome of checking one inequality: `lhs ≥ rhs` (within `tolerance`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RelationCheck {
    /// A short name of the relation ("observation-2.1", "lemma-3.2", …).
    pub relation: String,
    /// The measured left-hand side.
    pub lhs: f64,
    /// The required right-hand side.
    pub rhs: f64,
    /// Absolute tolerance used for the comparison.
    pub tolerance: f64,
    /// Whether the inequality holds.
    pub holds: bool,
}

impl RelationCheck {
    fn new(relation: &str, lhs: f64, rhs: f64, tolerance: f64) -> Self {
        RelationCheck {
            relation: relation.to_string(),
            lhs,
            rhs,
            tolerance,
            holds: lhs + tolerance >= rhs,
        }
    }

    /// Slack `lhs − rhs` (positive when the inequality holds strictly).
    pub fn slack(&self) -> f64 {
        self.lhs - self.rhs
    }
}

/// Observation 2.1 for a single set: `β(S) ≥ βw(S) ≥ βu(S)`.
/// Returns the two chained checks.
pub fn observation_2_1_for_set(g: &Graph, s: &VertexSet) -> Vec<RelationCheck> {
    let beta = crate::ordinary::of_set(g, s);
    let (beta_w, _) = crate::wireless::of_set_exact(g, s);
    let beta_u = crate::unique::of_set(g, s);
    vec![
        RelationCheck::new("observation-2.1: β ≥ βw", beta, beta_w, 1e-9),
        RelationCheck::new("observation-2.1: βw ≥ βu", beta_w, beta_u, 1e-9),
    ]
}

/// Lemma 3.2 for a single set: `βu(S) ≥ 2·β(S) − Δ`.
pub fn lemma_3_2_for_set(g: &Graph, s: &VertexSet) -> RelationCheck {
    let beta = crate::ordinary::of_set(g, s);
    let beta_u = crate::unique::of_set(g, s);
    let delta = g.max_degree() as f64;
    RelationCheck::new("lemma-3.2: βu ≥ 2β − Δ", beta_u, 2.0 * beta - delta, 1e-9)
}

/// Theorem 1.1 for a single set, using the *exact* inner maximization:
/// `βw(S) ≥ β(S) / log₂(2·min{Δ/β(S), Δ·β(S)})` — the paper's bound with the
/// `Ω`-constant taken as 1. The theorem is asymptotic, so harnesses usually
/// pass `constant < 1` to make the check meaningful on small instances; the
/// default here is the paper-shaped constant 1 with the caller able to relax
/// via `constant`.
pub fn theorem_1_1_for_set(g: &Graph, s: &VertexSet, constant: f64) -> RelationCheck {
    let beta = crate::ordinary::of_set(g, s);
    let (beta_w, _) = crate::wireless::of_set_exact(g, s);
    let delta = g.max_degree();
    let bound = constant * wx_spokesman::bounds::theorem_1_1_lower_bound(delta, beta);
    RelationCheck::new(
        "theorem-1.1: βw ≥ c·β/log(2·min{Δ/β, Δβ})",
        beta_w,
        bound,
        1e-9,
    )
}

/// Theorem 1.1 for a single set using a polynomial-time *lower bound* on the
/// inner maximization (sound for verifying the theorem: if even the lower
/// bound clears the threshold, the true wireless expansion does too).
pub fn theorem_1_1_for_set_via_portfolio(
    g: &Graph,
    s: &VertexSet,
    constant: f64,
    seed: u64,
) -> RelationCheck {
    let beta = crate::ordinary::of_set(g, s);
    let portfolio = wx_spokesman::PortfolioSolver::default();
    let (beta_w_lb, _) = crate::wireless::of_set_lower_bound(g, s, &portfolio, seed);
    let delta = g.max_degree();
    let bound = constant * wx_spokesman::bounds::theorem_1_1_lower_bound(delta, beta);
    RelationCheck::new(
        "theorem-1.1 (portfolio): βw ≥ c·β/log(2·min{Δ/β, Δβ})",
        beta_w_lb,
        bound,
        1e-9,
    )
}

/// Graph-level Observation 2.1: `β ≥ βw ≥ βu` for the measured graph-level
/// quantities supplied by the caller.
pub fn observation_2_1_graph(beta: f64, beta_w: f64, beta_u: f64) -> Vec<RelationCheck> {
    vec![
        RelationCheck::new("observation-2.1 (graph): β ≥ βw", beta, beta_w, 1e-9),
        RelationCheck::new("observation-2.1 (graph): βw ≥ βu", beta_w, beta_u, 1e-9),
    ]
}

/// Lemma 3.1 graph-level check for `d`-regular graphs: given measured
/// `(αu, βu)` and the measured ordinary expansion `β`, verify
/// `β ≥ (1 − 1/d)·βu + (d − λ₂)(1 − αu)/d`.
pub fn lemma_3_1_graph(
    g: &Graph,
    alpha_u: f64,
    beta_u: f64,
    beta: f64,
    seed: u64,
) -> Option<RelationCheck> {
    let bound = crate::spectral::lemma_3_1_bound(g, alpha_u, beta_u, seed)?;
    Some(RelationCheck::new(
        "lemma-3.1: β ≥ (1−1/d)βu + (d−λ₂)(1−αu)/d",
        beta,
        bound,
        1e-6,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wx_graph::GraphBuilder;

    fn complete(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                b.add_edge(i, j).unwrap();
            }
        }
        b.build()
    }

    fn petersen() -> Graph {
        // the Petersen graph: 3-regular, a decent small expander
        let outer = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)];
        let spokes = [(0, 5), (1, 6), (2, 7), (3, 8), (4, 9)];
        let inner = [(5, 7), (7, 9), (9, 6), (6, 8), (8, 5)];
        Graph::from_edges(10, outer.into_iter().chain(spokes).chain(inner)).unwrap()
    }

    #[test]
    fn observation_2_1_holds_on_petersen_sets() {
        let g = petersen();
        for s in [
            g.vertex_set([0]),
            g.vertex_set([0, 1]),
            g.vertex_set([0, 2, 5]),
            g.vertex_set([0, 1, 2, 3, 4]),
        ] {
            for check in observation_2_1_for_set(&g, &s) {
                assert!(
                    check.holds,
                    "{}: lhs {} rhs {}",
                    check.relation, check.lhs, check.rhs
                );
            }
        }
    }

    #[test]
    fn lemma_3_2_holds_on_complete_graph_sets() {
        let g = complete(7);
        for s in [
            g.vertex_set([0]),
            g.vertex_set([0, 1]),
            g.vertex_set([0, 1, 2]),
        ] {
            let check = lemma_3_2_for_set(&g, &s);
            assert!(check.holds, "lemma 3.2 failed: {check:?}");
        }
    }

    #[test]
    fn theorem_1_1_holds_on_petersen_sets() {
        let g = petersen();
        for s in [
            g.vertex_set([0, 1]),
            g.vertex_set([0, 2, 5, 7]),
            g.vertex_set([0, 1, 2, 3, 4]),
        ] {
            let check = theorem_1_1_for_set(&g, &s, 1.0);
            assert!(check.holds, "theorem 1.1 failed: {check:?}");
            let check = theorem_1_1_for_set_via_portfolio(&g, &s, 0.5, 3);
            assert!(check.holds, "theorem 1.1 (portfolio) failed: {check:?}");
        }
    }

    #[test]
    fn graph_level_observation() {
        let checks = observation_2_1_graph(2.0, 1.5, 0.5);
        assert!(checks.iter().all(|c| c.holds));
        let bad = observation_2_1_graph(1.0, 1.5, 0.5);
        assert!(!bad[0].holds);
        assert!((bad[0].slack() + 0.5).abs() < 1e-12);
    }

    #[test]
    fn lemma_3_1_on_petersen() {
        let g = petersen();
        // Petersen: d = 3, λ₂ = 1. For αu = 0.2 (sets of ≤ 2 vertices) the
        // exact unique expansion is βu = 2 (two adjacent vertices have 4
        // unique neighbors); β for those sets is also 2.
        let engine = crate::engine::MeasurementEngine::builder()
            .alpha(0.2)
            .build();
        let beta_u = engine
            .measure(&g, &crate::engine::UniqueNeighbor)
            .unwrap()
            .value;
        let beta = engine.measure(&g, &crate::engine::Ordinary).unwrap().value;
        let check = lemma_3_1_graph(&g, 0.2, beta_u, beta, 1).unwrap();
        assert!(check.holds, "{check:?}");
    }

    #[test]
    fn lemma_3_1_rejects_irregular_graphs() {
        let g = Graph::from_edges(3, [(0, 1)]).unwrap();
        assert!(lemma_3_1_graph(&g, 0.3, 0.0, 1.0, 0).is_none());
    }
}
