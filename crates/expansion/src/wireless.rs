//! Wireless expansion `βw(G)` — per-set primitives (Section 2.2).
//!
//! For a set `S`, the *wireless expansion of `S`* is
//! `max { |Γ¹_S(S')|/|S| : S' ⊆ S }` — the best unique coverage any
//! sub-selection of transmitters can achieve, normalized by `|S|`. The graph
//! quantity `βw(G)` is the minimum of this over all `S` with `|S| ≤ α·n`,
//! computed by the [`crate::engine::MeasurementEngine`] driving the
//! [`crate::engine::Wireless`] measure.
//!
//! Computing the inner maximum is exactly the Spokesman Election problem, so
//! this module keeps the two per-set primitives the engine composes:
//!
//! * [`of_set_exact`] computes it optimally via [`wx_spokesman::ExactSolver`]
//!   (feasible for `|S| ≤ 25`);
//! * [`of_set_lower_bound`] computes a certified *lower bound* via the
//!   polynomial-time [`wx_spokesman::PortfolioSolver`] — sound because any
//!   `S'` certifies `wireless-expansion(S) ≥ |Γ¹_S(S')|/|S|`.
//!
//! Note the asymmetry inherited by sampled engine measurements: for a
//! *single* set the portfolio gives a lower bound, but minimizing that lower
//! bound over sampled sets yields an estimate of `βw(G)` that is neither a
//! strict upper nor lower bound of the true value (the sampling may miss the
//! worst set; the portfolio may undershoot the inner max). The engine's
//! exact strategy resolves both quantifiers exhaustively and is the ground
//! truth used in tests.

use wx_graph::{BipartiteGraph, GraphView, NeighborhoodScratch, VertexSet};
use wx_spokesman::{ExactSolver, PortfolioSolver, SpokesmanSolver};

/// The exact wireless expansion of a single set `S`: the optimal unique
/// coverage over all `S' ⊆ S`, divided by `|S|`. Returns the maximizing
/// subset as well. Infinite for the empty set.
///
/// # Panics
/// Panics if `|S| > 25` (the exact spokesman solver's limit).
pub fn of_set_exact<G: GraphView + ?Sized>(g: &G, s: &VertexSet) -> (f64, VertexSet) {
    of_set_exact_with(g, s, &mut NeighborhoodScratch::new(g.num_vertices()))
}

/// [`of_set_exact`] against a caller-provided scratch (used by the engine to
/// resolve `Γ⁻(S)` for the bipartite view without per-candidate allocation).
pub fn of_set_exact_with<G: GraphView + ?Sized>(
    g: &G,
    s: &VertexSet,
    scratch: &mut NeighborhoodScratch,
) -> (f64, VertexSet) {
    if s.is_empty() {
        return (f64::INFINITY, s.clone());
    }
    let (bip, left_ids, _right_ids) = BipartiteGraph::from_set_in_graph_with(g, s, scratch);
    let (cov, local_subset) = ExactSolver::optimum(&bip);
    let subset = VertexSet::from_iter(g.num_vertices(), local_subset.iter().map(|i| left_ids[i]));
    (cov as f64 / s.len() as f64, subset)
}

/// A certified lower bound on the wireless expansion of a single set `S`,
/// obtained by running a polynomial-time spokesman portfolio on the bipartite
/// view of `S`. Returns the witnessing transmitter subset `S' ⊆ S` (in the
/// original graph's vertex ids).
pub fn of_set_lower_bound<G: GraphView + ?Sized>(
    g: &G,
    s: &VertexSet,
    portfolio: &PortfolioSolver,
    seed: u64,
) -> (f64, VertexSet) {
    of_set_lower_bound_with(
        g,
        s,
        portfolio,
        seed,
        &mut NeighborhoodScratch::new(g.num_vertices()),
    )
}

/// [`of_set_lower_bound`] against a caller-provided scratch.
pub fn of_set_lower_bound_with<G: GraphView + ?Sized>(
    g: &G,
    s: &VertexSet,
    portfolio: &PortfolioSolver,
    seed: u64,
    scratch: &mut NeighborhoodScratch,
) -> (f64, VertexSet) {
    if s.is_empty() {
        return (f64::INFINITY, s.clone());
    }
    let (bip, left_ids, _right_ids) = BipartiteGraph::from_set_in_graph_with(g, s, scratch);
    let result = portfolio.solve(&bip, seed);
    let subset = VertexSet::from_iter(g.num_vertices(), result.subset.iter().map(|i| left_ids[i]));
    (result.unique_coverage as f64 / s.len() as f64, subset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{MeasureStrategy, MeasurementEngine, Ordinary, Wireless};
    use crate::sampling::{CandidateSets, SamplerConfig};
    use wx_graph::Graph;
    use wx_graph::GraphBuilder;

    fn complete_plus(k: usize) -> Graph {
        let mut b = GraphBuilder::new(k + 1);
        for i in 0..k {
            for j in (i + 1)..k {
                b.add_edge(i, j).unwrap();
            }
        }
        b.add_edge(k, 0).unwrap();
        b.add_edge(k, 1).unwrap();
        b.build()
    }

    fn cycle(n: usize) -> Graph {
        Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n))).unwrap()
    }

    #[test]
    fn wireless_of_set_on_c_plus_is_positive_even_when_unique_is_zero() {
        let k = 6;
        let g = complete_plus(k);
        let s = g.vertex_set([0, 1, k]);
        assert_eq!(crate::unique::of_set(&g, &s), 0.0);
        let (w, subset) = of_set_exact(&g, &s);
        // choosing S' = {x} uniquely covers the k-2 other clique vertices
        assert!((w - (k - 2) as f64 / 3.0).abs() < 1e-12);
        assert!(!subset.is_empty());
    }

    #[test]
    fn observation_2_1_sandwich_per_set() {
        // β(S) ≥ βw(S) ≥ βu(S) for every set.
        let g = complete_plus(5);
        let pool = CandidateSets::generate(&g, &SamplerConfig::default(), 1);
        for s in pool.sets.iter().filter(|s| s.len() <= 8) {
            let ordinary = crate::ordinary::of_set(&g, s);
            let unique = crate::unique::of_set(&g, s);
            let (wireless, _) = of_set_exact(&g, s);
            assert!(
                ordinary + 1e-12 >= wireless,
                "ordinary {ordinary} < wireless {wireless} on {s:?}"
            );
            assert!(
                wireless + 1e-12 >= unique,
                "wireless {wireless} < unique {unique} on {s:?}"
            );
        }
    }

    #[test]
    fn portfolio_lower_bound_never_exceeds_exact() {
        let g = complete_plus(6);
        let pool = CandidateSets::generate(&g, &SamplerConfig::light(0.5), 3);
        let portfolio = PortfolioSolver::default();
        for (i, s) in pool.sets.iter().enumerate().filter(|(_, s)| s.len() <= 10) {
            let (lb, _) = of_set_lower_bound(&g, s, &portfolio, i as u64);
            let (ex, _) = of_set_exact(&g, s);
            assert!(lb <= ex + 1e-12, "lower bound {lb} exceeds exact {ex}");
        }
    }

    #[test]
    fn exact_wireless_expansion_of_cycle() {
        // C8, α = 1/2: for a contiguous arc S of 4 vertices, the best S' is
        // the two endpoints, uniquely covering both boundary vertices:
        // wireless expansion of that set = 2/4 = 1/2 — equal to the ordinary
        // expansion (a cycle is so sparse that nothing is lost).
        let g = cycle(8);
        let engine = MeasurementEngine::builder().alpha(0.5).build();
        let wexp = engine.measure(&g, &Wireless::default()).unwrap();
        let oexp = engine.measure(&g, &Ordinary).unwrap();
        assert!((wexp.value - oexp.value).abs() < 1e-12);
    }

    #[test]
    fn engine_estimate_close_to_exact_on_small_graphs() {
        let g = complete_plus(6);
        let engine = MeasurementEngine::builder().alpha(0.5).build();
        let ex = engine.measure(&g, &Wireless::default()).unwrap();
        let est = MeasurementEngine::builder()
            .alpha(0.5)
            .strategy(MeasureStrategy::Sampled)
            .seed(11)
            .build()
            .measure(&g, &Wireless::default())
            .unwrap();
        // The estimate minimizes a lower bound over a subset of the sets, so
        // it can land on either side of the truth, but on a 7-vertex graph
        // the portfolio solves the inner problem optimally almost always.
        assert!(
            (est.value - ex.value).abs() <= 0.5 + 1e-9,
            "estimate {} far from exact {}",
            est.value,
            ex.value
        );
    }

    #[test]
    fn empty_set_and_empty_graph() {
        let g = cycle(4);
        let empty = g.empty_vertex_set();
        assert!(of_set_exact(&g, &empty).0.is_infinite());
        assert!(MeasurementEngine::default()
            .measure(&Graph::empty(0), &Wireless::default())
            .is_none());
    }
}
