//! Ordinary (vertex) expansion `β(G)`.
//!
//! `β(G) = min { |Γ⁻(S)|/|S| : S ⊆ V, 1 ≤ |S| ≤ α·n }` (Section 2.1). This
//! module provides the per-set quantity, the exact minimum by enumeration for
//! small graphs, and a sampled estimate (an *upper bound* on the true
//! minimum, since every evaluated set certifies `β ≤ |Γ⁻(S)|/|S|`).

use crate::sampling::{all_small_sets, CandidateSets, SamplerConfig};
use crate::ExpansionWitness;
use rayon::prelude::*;
use wx_graph::neighborhood::expansion_of_set;
use wx_graph::{Graph, VertexSet};

/// The expansion of a single set, `|Γ⁻(S)|/|S|` (re-exported convenience).
pub fn of_set(g: &Graph, s: &VertexSet) -> f64 {
    expansion_of_set(g, s)
}

/// Exact ordinary expansion by enumerating every non-empty set of size at
/// most `⌊α·n⌋`. Returns the minimizing witness. `None` for the empty graph.
///
/// # Panics
/// Panics if the graph has more than 22 vertices.
pub fn exact(g: &Graph, alpha: f64) -> Option<ExpansionWitness> {
    let n = g.num_vertices();
    if n == 0 {
        return None;
    }
    let max_size = ((alpha * n as f64).floor() as usize).clamp(1, n);
    let sets = all_small_sets(n, max_size);
    sets.into_par_iter()
        .map(|s| {
            let v = expansion_of_set(g, &s);
            ExpansionWitness::new(v, s)
        })
        .reduce_with(|a, b| a.min(b))
}

/// Estimated ordinary expansion: the minimum of `|Γ⁻(S)|/|S|` over a
/// candidate pool. The returned value is an *upper bound* on the true
/// `β(G)` (any set certifies an upper bound); with the adversarial samplers
/// it is usually close to the truth.
pub fn estimate(g: &Graph, candidates: &CandidateSets) -> Option<ExpansionWitness> {
    candidates
        .sets
        .par_iter()
        .map(|s| ExpansionWitness::new(expansion_of_set(g, s), s.clone()))
        .reduce_with(|a, b| a.min(b))
}

/// Convenience: generate a candidate pool with `config` and estimate.
pub fn estimate_with_config(
    g: &Graph,
    config: &SamplerConfig,
    seed: u64,
) -> Option<ExpansionWitness> {
    let pool = CandidateSets::generate(g, config, seed);
    estimate(g, &pool)
}

/// Checks whether the graph is an `(α, β)`-expander with respect to a
/// candidate pool: returns the first violating witness if some candidate set
/// has expansion below `beta`, otherwise `None`. (A `None` result is
/// evidence, not proof, unless the pool is exhaustive.)
pub fn find_violation(
    g: &Graph,
    candidates: &CandidateSets,
    beta: f64,
) -> Option<ExpansionWitness> {
    candidates
        .sets
        .iter()
        .map(|s| ExpansionWitness::new(expansion_of_set(g, s), s.clone()))
        .find(|w| w.value < beta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wx_graph::GraphBuilder;

    fn complete(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                b.add_edge(i, j).unwrap();
            }
        }
        b.build()
    }

    fn cycle(n: usize) -> Graph {
        Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n))).unwrap()
    }

    #[test]
    fn exact_expansion_of_complete_graph() {
        // K6, α = 1/2: worst set has 3 vertices, boundary 3, expansion 1.
        let g = complete(6);
        let w = exact(&g, 0.5).unwrap();
        assert!((w.value - 1.0).abs() < 1e-12);
        assert_eq!(w.witness.len(), 3);
    }

    #[test]
    fn exact_expansion_of_cycle() {
        // C8, α = 1/2: a contiguous arc of 4 vertices has boundary 2,
        // expansion 1/2.
        let g = cycle(8);
        let w = exact(&g, 0.5).unwrap();
        assert!((w.value - 0.5).abs() < 1e-12);
        assert_eq!(w.witness.len(), 4);
    }

    #[test]
    fn exact_on_small_alpha_only_considers_small_sets() {
        let g = cycle(8);
        // α = 1/8: only singletons allowed, each has expansion 2.
        let w = exact(&g, 1.0 / 8.0).unwrap();
        assert!((w.value - 2.0).abs() < 1e-12);
        assert_eq!(w.witness.len(), 1);
    }

    #[test]
    fn estimate_upper_bounds_exact() {
        let g = cycle(12);
        let exact_w = exact(&g, 0.5).unwrap();
        let est = estimate_with_config(&g, &SamplerConfig::default(), 3).unwrap();
        assert!(est.value >= exact_w.value - 1e-12);
        // the adversarial samplers should find the true minimum on a cycle
        assert!((est.value - exact_w.value).abs() < 1e-9, "estimate {} vs exact {}", est.value, exact_w.value);
    }

    #[test]
    fn empty_graph_has_no_expansion() {
        assert!(exact(&Graph::empty(0), 0.5).is_none());
    }

    #[test]
    fn find_violation_detects_low_expansion_sets() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let pool = CandidateSets::generate(&g, &SamplerConfig::default(), 5);
        // a path is a terrible expander: some set has expansion well below 2
        assert!(find_violation(&g, &pool, 1.5).is_some());
        // but no set has negative expansion
        assert!(find_violation(&g, &pool, 0.0).is_none());
    }

    #[test]
    fn of_set_matches_neighborhood_module() {
        let g = cycle(10);
        let s = g.vertex_set([0, 1, 2]);
        assert!((of_set(&g, &s) - 2.0 / 3.0).abs() < 1e-12);
    }
}
