//! Ordinary (vertex) expansion `β(G)` — per-set primitive.
//!
//! `β(G) = min { |Γ⁻(S)|/|S| : S ⊆ V, 1 ≤ |S| ≤ α·n }` (Section 2.1). This
//! module provides only the per-set quantity; graph-level minima (exhaustive
//! or sampled) are computed by the [`crate::engine::MeasurementEngine`]
//! driving the [`crate::engine::Ordinary`] measure.

use wx_graph::neighborhood::expansion_of_set;
use wx_graph::{GraphView, NeighborhoodScratch, VertexSet};

/// The expansion of a single set, `|Γ⁻(S)|/|S|` (re-exported convenience).
pub fn of_set<G: GraphView + ?Sized>(g: &G, s: &VertexSet) -> f64 {
    expansion_of_set(g, s)
}

/// [`of_set`] against a caller-provided scratch — the allocation-free form
/// the [`crate::engine::Ordinary`] measure drives per candidate set.
pub fn of_set_with<G: GraphView + ?Sized>(
    g: &G,
    s: &VertexSet,
    scratch: &mut NeighborhoodScratch,
) -> f64 {
    scratch.external_expansion(g, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{MeasureStrategy, MeasurementEngine, Ordinary};
    use wx_graph::Graph;

    fn cycle(n: usize) -> Graph {
        Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n))).unwrap()
    }

    #[test]
    fn engine_exact_expansion_of_complete_graph() {
        // K6, α = 1/2: worst set has 3 vertices, boundary 3, expansion 1.
        let mut b = wx_graph::GraphBuilder::new(6);
        for i in 0..6 {
            for j in (i + 1)..6 {
                b.add_edge(i, j).unwrap();
            }
        }
        let g = b.build();
        let m = MeasurementEngine::builder()
            .alpha(0.5)
            .build()
            .measure(&g, &Ordinary)
            .unwrap();
        assert!((m.value - 1.0).abs() < 1e-12);
        assert_eq!(m.witness.len(), 3);
    }

    #[test]
    fn of_set_matches_neighborhood_module() {
        let g = cycle(10);
        let s = g.vertex_set([0, 1, 2]);
        assert!((of_set(&g, &s) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn engine_exact_on_small_alpha_only_considers_small_sets() {
        let g = cycle(8);
        // α = 1/8: only singletons allowed, each has expansion 2.
        let engine = MeasurementEngine::builder().alpha(1.0 / 8.0).build();
        let m = engine.measure(&g, &Ordinary).unwrap();
        assert!((m.value - 2.0).abs() < 1e-12);
        assert_eq!(m.witness.len(), 1);
    }

    #[test]
    fn engine_estimate_upper_bounds_exact() {
        let g = cycle(12);
        let exact = MeasurementEngine::builder()
            .alpha(0.5)
            .strategy(MeasureStrategy::Exact)
            .build()
            .measure(&g, &Ordinary)
            .unwrap();
        let est = MeasurementEngine::builder()
            .alpha(0.5)
            .strategy(MeasureStrategy::Sampled)
            .seed(3)
            .build()
            .measure(&g, &Ordinary)
            .unwrap();
        assert!(est.value >= exact.value - 1e-12);
        assert!(
            (est.value - exact.value).abs() < 1e-9,
            "estimate {} vs exact {}",
            est.value,
            exact.value
        );
    }
}
