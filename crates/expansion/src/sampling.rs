//! Candidate-set generation for expansion estimation.
//!
//! The expansion notions are minima over exponentially many sets, so on
//! graphs too large for exact enumeration we estimate them by evaluating the
//! per-set quantity on a pool of candidate sets. Three generators are
//! combined:
//!
//! * **uniform random** subsets of each target size — unbiased but rarely
//!   close to the true minimizer;
//! * **BFS balls** around each (sampled) center — localized sets that tend to
//!   have small boundaries, a classic low-expansion family;
//! * **adversarial greedy growth** — starting from a vertex, repeatedly add
//!   the outside vertex that *minimizes* the resulting boundary, a local
//!   search towards the minimizing set.
//!
//! All generators are deterministic given the seed, and the pool of candidate
//! sets is shared by the ordinary / unique / wireless estimators so their
//! results are directly comparable (Observation 2.1 must hold set-by-set).

use rand::seq::SliceRandom;
use rand::Rng;
use wx_graph::random::{derive_seed, rng_from_seed};
use wx_graph::traversal::bfs;
use wx_graph::{GraphView, VertexSet};

/// Configuration for the candidate-set sampler.
#[derive(Clone, Debug)]
pub struct SamplerConfig {
    /// Maximum fraction of vertices a candidate set may contain (the `α` of
    /// the expansion definitions).
    pub alpha: f64,
    /// Number of uniform random sets per target size.
    pub random_sets_per_size: usize,
    /// Target sizes as fractions of `α·n` (e.g. `[0.25, 0.5, 1.0]`).
    pub size_fractions: Vec<f64>,
    /// Number of BFS-ball centers to sample.
    pub ball_centers: usize,
    /// Number of adversarial greedy growths to run.
    pub greedy_growths: usize,
    /// Include every singleton set (cheap, catches degree-based minima).
    pub include_singletons: bool,
    /// Vertex count above which the sampler switches to its memory-bounded
    /// large-graph regime (see [`CandidateSets::generate`]). Defaults to
    /// [`LARGE_N_THRESHOLD`]; raise it (up to `usize::MAX` to disable) when
    /// a graph comfortably fits in RAM and the exhaustive singleton pool's
    /// witness guarantees matter more than memory.
    pub large_graph_threshold: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            alpha: 0.5,
            random_sets_per_size: 16,
            size_fractions: vec![0.1, 0.25, 0.5, 0.75, 1.0],
            ball_centers: 8,
            greedy_growths: 4,
            include_singletons: true,
            large_graph_threshold: LARGE_N_THRESHOLD,
        }
    }
}

impl SamplerConfig {
    /// A lighter configuration for inner loops and benches.
    pub fn light(alpha: f64) -> Self {
        SamplerConfig {
            alpha,
            random_sets_per_size: 4,
            size_fractions: vec![0.25, 0.5, 1.0],
            ball_centers: 3,
            greedy_growths: 2,
            include_singletons: true,
            large_graph_threshold: LARGE_N_THRESHOLD,
        }
    }

    /// The maximum candidate-set size for a graph on `n` vertices:
    /// `⌊α·n⌋`, but at least 1 so that the estimators always have candidates.
    pub fn max_set_size(&self, n: usize) -> usize {
        ((self.alpha * n as f64).floor() as usize).clamp(1, n)
    }
}

/// A pool of candidate sets for expansion estimation.
#[derive(Clone, Debug)]
pub struct CandidateSets {
    /// The candidate sets (each non-empty and of size at most `⌊α·n⌋`).
    pub sets: Vec<VertexSet>,
    /// The `α` used to generate them.
    pub alpha: f64,
}

/// Default for [`SamplerConfig::large_graph_threshold`]: above this vertex
/// count the sampler switches to its large-graph regime
/// (see [`CandidateSets::generate`]): candidate sizes are clamped to
/// [`LARGE_N_SET_CAP`], singletons are sampled instead of exhaustive, and
/// greedy growths stop at [`LARGE_N_GROWTH_CAP`]. Pools for graphs at or
/// below the threshold are bit-for-bit what they always were.
pub const LARGE_N_THRESHOLD: usize = 8192;
/// Candidate-set size cap in the large-graph regime. An α·n-sized set over a
/// million-vertex implicit graph would cost megabytes *per candidate*; the
/// minimum over sets up to this cap is still an upper-bound witness search,
/// just a memory-bounded one.
pub const LARGE_N_SET_CAP: usize = 4096;
/// Number of sampled singleton candidates in the large-graph regime
/// (exhaustive singletons would allocate an n-bit set per vertex: O(n²)
/// bits).
pub const LARGE_N_SINGLETON_SAMPLES: usize = 256;
/// Step cap for adversarial greedy growth in the large-graph regime (each
/// step scans the whole boundary, so uncapped growth is quadratic).
pub const LARGE_N_GROWTH_CAP: usize = 512;

impl CandidateSets {
    /// Generates the candidate pool for `g` under `config`, seeded by `seed`.
    ///
    /// For graphs past [`LARGE_N_THRESHOLD`] vertices (the implicit-backend
    /// regime) the pool is memory- and time-bounded: candidate sizes clamp
    /// to [`LARGE_N_SET_CAP`], singletons are a seeded
    /// [`LARGE_N_SINGLETON_SAMPLES`]-vertex sample, and greedy growths stop
    /// at [`LARGE_N_GROWTH_CAP`] vertices — so `wx measure` on a
    /// million-vertex hypercube allocates megabytes, not the O(n²) bits the
    /// exhaustive singleton pool would need. Graphs at or below the
    /// threshold generate exactly the historical pool.
    pub fn generate<G: GraphView + ?Sized>(g: &G, config: &SamplerConfig, seed: u64) -> Self {
        let n = g.num_vertices();
        let mut sets: Vec<VertexSet> = Vec::new();
        if n == 0 {
            return CandidateSets {
                sets,
                alpha: config.alpha,
            };
        }
        let large = n > config.large_graph_threshold;
        let max_size = if large {
            config.max_set_size(n).min(LARGE_N_SET_CAP)
        } else {
            config.max_set_size(n)
        };
        let growth_cap = if large {
            max_size.min(LARGE_N_GROWTH_CAP)
        } else {
            max_size
        };
        let mut rng = rng_from_seed(derive_seed(seed, 0));

        // Singletons: exhaustive below the threshold, a seeded sample above
        // it (each singleton still carries an n-bit universe).
        if config.include_singletons {
            if large {
                let mut singleton_rng = rng_from_seed(derive_seed(seed, 0x517));
                let sample = wx_graph::random::random_subset_of_size_sparse(
                    &mut singleton_rng,
                    n,
                    LARGE_N_SINGLETON_SAMPLES.min(n),
                );
                for v in sample.iter() {
                    sets.push(VertexSet::from_iter(n, [v]));
                }
            } else {
                for v in 0..n {
                    sets.push(VertexSet::from_iter(n, [v]));
                }
            }
        }

        // Uniform random sets per target size. Seeds are derived by *nested*
        // derivation — one child seed per size fraction, then one grandchild
        // per set — so the streams stay distinct for any pool size. (A
        // single-level `1000 + fi*131 + t` stride made adjacent size
        // fractions reuse seeds, and hence emit duplicate candidate sets,
        // whenever `random_sets_per_size > 131`.)
        for (fi, &frac) in config.size_fractions.iter().enumerate() {
            let k = ((frac * max_size as f64).round() as usize).clamp(1, max_size);
            let fraction_seed = derive_seed(seed, 1 + fi as u64);
            for t in 0..config.random_sets_per_size {
                let mut trial_rng = rng_from_seed(derive_seed(fraction_seed, t as u64));
                // the sparse sampler keeps each draw O(k log k) in the large
                // regime; the dense one preserves the historical stream below
                // the threshold
                sets.push(if large {
                    wx_graph::random::random_subset_of_size_sparse(&mut trial_rng, n, k)
                } else {
                    wx_graph::random::random_subset_of_size(&mut trial_rng, n, k)
                });
            }
        }

        // BFS balls around sampled centers, truncated to the size cap.
        let centers: Vec<usize> = if large {
            wx_graph::random::random_subset_of_size_sparse(&mut rng, n, config.ball_centers.min(n))
                .to_vec()
        } else {
            let mut all: Vec<usize> = (0..n).collect();
            all.shuffle(&mut rng);
            all.truncate(config.ball_centers);
            all
        };
        for &c in centers.iter() {
            let res = bfs(g, c);
            // Bucket the reachable vertices by distance in one O(n) pass
            // (each bucket stays in vertex-index order, exactly like
            // `BfsResult::layer`); the per-radius `layer(r)` re-scan was an
            // O(n·diameter) hotspot on high-diameter large-n families.
            let mut layers: Vec<Vec<usize>> = vec![Vec::new(); res.eccentricity + 1];
            for (v, &d) in res.dist.iter().enumerate() {
                if d != usize::MAX {
                    layers[d].push(v);
                }
            }
            let mut ball: Vec<usize> = Vec::new();
            // grow layer by layer until the cap is hit
            'outer: for layer in &layers {
                for &v in layer {
                    if ball.len() >= max_size {
                        break 'outer;
                    }
                    ball.push(v);
                }
                // record the prefix ball at every radius (nested candidates)
                if !ball.is_empty() {
                    sets.push(VertexSet::from_iter(n, ball.iter().copied()));
                }
            }
        }

        // Adversarial greedy growth: repeatedly add the boundary vertex whose
        // inclusion minimizes the new external boundary. The marginal effect
        // of adding `v` is computed in O(deg v): the boundary loses `v`
        // itself and gains `v`'s neighbors that are in neither the current
        // set nor the current boundary, so we only need to count the latter.
        for t in 0..config.greedy_growths {
            let mut grow_rng = rng_from_seed(derive_seed(seed, 5000 + t as u64));
            let start = grow_rng.gen_range(0..n);
            let mut current = VertexSet::from_iter(n, [start]);
            let mut boundary = wx_graph::neighborhood::external_neighborhood(g, &current);
            sets.push(current.clone());
            while current.len() < growth_cap && !boundary.is_empty() {
                let mut best: Option<(usize, usize)> = None;
                for v in boundary.iter() {
                    let fresh = g
                        .neighbors_iter(v)
                        .filter(|&u| !current.contains(u) && !boundary.contains(u))
                        .count();
                    match best {
                        None => best = Some((v, fresh)),
                        Some((_, bb)) if fresh < bb => best = Some((v, fresh)),
                        _ => {}
                    }
                }
                let (v, _) = best.expect("non-empty boundary");
                current.insert(v);
                boundary.remove(v);
                for u in g.neighbors_iter(v) {
                    if !current.contains(u) {
                        boundary.insert(u);
                    }
                }
                // Record prefixes at geometrically spaced sizes (plus the
                // final set) so the candidate pool stays small even when the
                // growth runs to thousands of vertices.
                if current.len().is_power_of_two() || current.len() == growth_cap {
                    sets.push(current.clone());
                }
            }
        }

        // Drop any accidental empties or over-cap sets, dedup by member list
        // (compared in place; no per-set clones).
        sets.retain(|s| !s.is_empty() && s.len() <= max_size);
        sets.sort_by(|a, b| a.as_slice().cmp(b.as_slice()));
        sets.dedup_by(|a, b| a.as_slice() == b.as_slice());
        wx_trace::count(wx_trace::CounterId::SamplerDraws, sets.len() as u64);

        CandidateSets {
            sets,
            alpha: config.alpha,
        }
    }

    /// Number of candidate sets in the pool.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// `true` if the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }
}

/// Hard cap on the number of sets [`all_small_sets`] will enumerate
/// (`2^22`, the historical `n ≤ 22` full-enumeration worst case).
pub const EXACT_ENUMERATION_BUDGET: usize = 1 << 22;

/// `Σ_{k=1}^{max_size} C(n, k)`, saturating at `usize::MAX` once it exceeds
/// [`EXACT_ENUMERATION_BUDGET`].
fn count_small_sets(n: usize, max_size: usize) -> usize {
    let mut total = 0usize;
    let mut binom = 1usize; // C(n, 0)
    for k in 1..=max_size.min(n) {
        // running product stays exactly divisible: C(n,k) = C(n,k-1)·(n-k+1)/k
        binom = binom.saturating_mul(n - k + 1) / k;
        total = total.saturating_add(binom);
        if total > EXACT_ENUMERATION_BUDGET {
            return usize::MAX;
        }
    }
    total
}

/// Enumerates *every* non-empty subset of `0..n` with size at most
/// `max_size`, for exact expansion computation.
///
/// For `n ≤ 22` this walks all `2^n` bitmasks (preserving the historical
/// enumeration order, which tie-breaking witnesses depend on). For larger
/// `n` it enumerates combinations size by size in lexicographic order, so
/// exact measurement stays feasible on wider graphs whenever the size cap
/// keeps the count under [`EXACT_ENUMERATION_BUDGET`] — e.g. `n = 24` with
/// `⌊α·n⌋ = 3` is ~2.3k sets, not `2^24`.
///
/// # Panics
/// Panics if the enumeration would exceed [`EXACT_ENUMERATION_BUDGET`] sets.
pub fn all_small_sets(n: usize, max_size: usize) -> Vec<VertexSet> {
    let max_size = max_size.min(n);
    if n <= 22 {
        let mut sets = Vec::new();
        for mask in 1u32..(1u32 << n) {
            let size = mask.count_ones() as usize;
            if size > max_size {
                continue;
            }
            sets.push(VertexSet::from_iter(
                n,
                (0..n).filter(|&v| (mask >> v) & 1 == 1),
            ));
        }
        return sets;
    }
    let total = count_small_sets(n, max_size);
    assert!(
        total <= EXACT_ENUMERATION_BUDGET,
        "exact enumeration of sets up to size {max_size} over {n} vertices exceeds \
         the budget of {EXACT_ENUMERATION_BUDGET} sets; reduce alpha or sample instead"
    );
    let mut sets = Vec::with_capacity(total);
    for k in 1..=max_size {
        let mut comb: Vec<usize> = (0..k).collect();
        loop {
            sets.push(VertexSet::from_sorted(n, comb.clone()));
            // advance to the next k-combination in lexicographic order
            let Some(i) = (0..k).rev().find(|&i| comb[i] < n - k + i) else {
                break;
            };
            comb[i] += 1;
            for j in i + 1..k {
                comb[j] = comb[j - 1] + 1;
            }
        }
    }
    sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use wx_graph::Graph;

    fn cycle(n: usize) -> Graph {
        Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n))).unwrap()
    }

    #[test]
    fn generated_sets_respect_size_cap() {
        let g = cycle(20);
        let cfg = SamplerConfig::default();
        let pool = CandidateSets::generate(&g, &cfg, 1);
        let cap = cfg.max_set_size(20);
        assert!(!pool.is_empty());
        for s in &pool.sets {
            assert!(!s.is_empty());
            assert!(s.len() <= cap, "set of size {} exceeds cap {cap}", s.len());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let g = cycle(16);
        let cfg = SamplerConfig::light(0.4);
        let a = CandidateSets::generate(&g, &cfg, 7);
        let b = CandidateSets::generate(&g, &cfg, 7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.sets.iter().zip(b.sets.iter()) {
            assert_eq!(x.to_vec(), y.to_vec());
        }
    }

    #[test]
    fn includes_singletons_when_requested() {
        let g = cycle(10);
        let pool = CandidateSets::generate(&g, &SamplerConfig::default(), 3);
        for v in 0..10 {
            assert!(
                pool.sets.iter().any(|s| s.len() == 1 && s.contains(v)),
                "singleton {{{v}}} missing"
            );
        }
    }

    #[test]
    fn random_set_seeds_are_distinct_for_large_pools() {
        // Regression: the old single-level derivation
        // `derive_seed(seed, 1000 + fi*131 + t)` collided across adjacent
        // size-fraction indices as soon as random_sets_per_size > 131. The
        // nested derivation must produce pairwise-distinct seeds for every
        // (fraction, set) pair, even for pools far past the old stride.
        let seed = 42u64;
        let fractions = 5usize;
        let sets_per_size = 500usize;
        let mut seen = std::collections::HashSet::new();
        for fi in 0..fractions {
            let fraction_seed = derive_seed(seed, 1 + fi as u64);
            for t in 0..sets_per_size {
                assert!(
                    seen.insert(derive_seed(fraction_seed, t as u64)),
                    "duplicate seed at fraction {fi}, set {t}"
                );
            }
        }
        assert_eq!(seen.len(), fractions * sets_per_size);
    }

    #[test]
    fn oversize_pools_draw_distinct_random_sets() {
        // End to end: with random_sets_per_size past the old 131 stride the
        // generator must not silently emit duplicate candidate sets. Both
        // fractions round to the same target size k = 200, so under the old
        // `1000 + fi*131 + t` derivation the seed collisions between
        // adjacent fractions (fi=0, t ≥ 131 vs fi=1, t − 131) would draw
        // literally identical sets, which the pool's final dedup would then
        // silently drop — shrinking the pool below 2 × 140. With nested
        // derivation every draw is independent and (overwhelmingly) distinct.
        let g = cycle(400);
        let cfg = SamplerConfig {
            alpha: 0.5,
            random_sets_per_size: 140,
            size_fractions: vec![0.999, 1.0],
            ball_centers: 0,
            greedy_growths: 0,
            include_singletons: false,
            large_graph_threshold: LARGE_N_THRESHOLD,
        };
        let pool = CandidateSets::generate(&g, &cfg, 9);
        assert_eq!(pool.len(), 280, "candidate sets were lost to seed reuse");
    }

    #[test]
    fn large_graph_regime_bounds_the_pool() {
        use wx_graph::ImplicitGraph;
        // Q_14: 16_384 vertices — past LARGE_N_THRESHOLD. The pool must stay
        // small and size-capped instead of allocating one n-bit set per
        // vertex.
        let g = ImplicitGraph::hypercube(14).unwrap();
        let cfg = SamplerConfig::default();
        let pool = CandidateSets::generate(&g, &cfg, 3);
        assert!(!pool.is_empty());
        // size-1 sets: the sampled singletons plus the radius-0 ball
        // prefixes and greedy-growth starting points
        let singleton_count = pool.sets.iter().filter(|s| s.len() == 1).count();
        assert!(
            singleton_count <= LARGE_N_SINGLETON_SAMPLES + cfg.ball_centers + cfg.greedy_growths,
            "{singleton_count} singletons"
        );
        for s in &pool.sets {
            assert!(s.len() <= LARGE_N_SET_CAP, "set of size {}", s.len());
        }
        assert!(
            pool.len() <= LARGE_N_SINGLETON_SAMPLES + 200,
            "pool of {} sets",
            pool.len()
        );
        // deterministic given the seed
        let again = CandidateSets::generate(&g, &cfg, 3);
        assert_eq!(pool.len(), again.len());

        // ... and the engine can actually measure at this size
        let m = crate::MeasurementEngine::builder()
            .strategy(crate::engine::MeasureStrategy::Sampled)
            .seed(3)
            .build()
            .measure(&g, &crate::engine::Ordinary)
            .unwrap();
        assert!(m.value > 0.0 && !m.exact);
    }

    #[test]
    fn threshold_graphs_keep_the_historical_pool_shape() {
        // Scenario-sized graphs are untouched by the large regime.
        let g = cycle(100);
        let pool = CandidateSets::generate(&g, &SamplerConfig::default(), 1);
        let singleton_count = pool.sets.iter().filter(|s| s.len() == 1).count();
        assert_eq!(singleton_count, 100);
        assert_eq!(
            pool.sets.iter().map(|s| s.len()).max().unwrap(),
            SamplerConfig::default().max_set_size(100)
        );
    }

    #[test]
    fn large_regime_boundary_is_exclusive() {
        // The byte-identical-reports contract: n == LARGE_N_THRESHOLD stays
        // in the exhaustive-singleton regime; n == LARGE_N_THRESHOLD + 1
        // switches to the sampled one. Singleton-only config so the test
        // stays cheap at 8k vertices.
        use wx_graph::ImplicitGraph;
        let cfg = SamplerConfig {
            alpha: 0.5,
            random_sets_per_size: 0,
            size_fractions: vec![],
            ball_centers: 0,
            greedy_growths: 0,
            include_singletons: true,
            large_graph_threshold: LARGE_N_THRESHOLD,
        };
        let at = ImplicitGraph::cycle_power(LARGE_N_THRESHOLD, 1).unwrap();
        let pool = CandidateSets::generate(&at, &cfg, 1);
        assert_eq!(pool.len(), LARGE_N_THRESHOLD, "exhaustive at the boundary");
        let above = ImplicitGraph::cycle_power(LARGE_N_THRESHOLD + 1, 1).unwrap();
        let pool = CandidateSets::generate(&above, &cfg, 1);
        assert_eq!(pool.len(), LARGE_N_SINGLETON_SAMPLES, "sampled above it");
    }

    #[test]
    fn empty_graph_yields_empty_pool() {
        let g = Graph::empty(0);
        let pool = CandidateSets::generate(&g, &SamplerConfig::default(), 0);
        assert!(pool.is_empty());
    }

    #[test]
    fn max_set_size_is_at_least_one() {
        let cfg = SamplerConfig {
            alpha: 0.01,
            ..SamplerConfig::default()
        };
        assert_eq!(cfg.max_set_size(10), 1);
        assert_eq!(cfg.max_set_size(1000), 10);
    }

    #[test]
    fn all_small_sets_counts() {
        let sets = all_small_sets(4, 4);
        assert_eq!(sets.len(), 15);
        let sets = all_small_sets(4, 2);
        assert_eq!(sets.len(), 4 + 6);
        for s in &sets {
            assert!(s.len() <= 2);
        }
    }

    #[test]
    fn all_small_sets_combination_path_matches_mask_path_counts() {
        // n = 30 with a small cap used to panic; now it enumerates
        // C(30,1) + C(30,2) = 465 sets, each within the cap and deduplicated.
        let sets = all_small_sets(30, 2);
        assert_eq!(sets.len(), 30 + 435);
        let mut seen: Vec<Vec<usize>> = sets.iter().map(|s| s.to_vec()).collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), sets.len());
        assert!(sets.iter().all(|s| !s.is_empty() && s.len() <= 2));
    }

    #[test]
    fn combination_and_mask_paths_agree_on_the_set_family() {
        // same n, same cap: the two enumeration strategies must produce the
        // same family of sets (order may differ)
        let by_mask: std::collections::BTreeSet<Vec<usize>> =
            all_small_sets(10, 3).iter().map(|s| s.to_vec()).collect();
        // force the combination path through a wider-universe prefix trick:
        // enumerate over 10 vertices via the public API is mask-based, so
        // instead cross-check against the binomial count
        assert_eq!(by_mask.len(), 10 + 45 + 120);
        assert_eq!(super::count_small_sets(10, 3), 10 + 45 + 120);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn all_small_sets_rejects_astronomic_enumeration() {
        all_small_sets(64, 32);
    }
}
