//! Property tests for the `wx-analyze` lexer.
//!
//! The lexer must be *total*: on any input string it terminates, never
//! panics, and produces a token stream that tiles the source exactly
//! (every byte is either inside a token span or is inter-token
//! whitespace). These tests drive it with generated token soup — valid
//! Rust fragments glued together in random order — and with arbitrary
//! Unicode garbage, and check the tiling invariant plus the shapes of
//! the trickier tokens (nested comments, raw strings, lifetimes).

use proptest::prelude::*;
use wx_analyze::lexer::{lex, TokenKind};

/// Checks the fundamental tiling invariant: tokens are in order,
/// non-overlapping, within bounds, on char boundaries, and the gaps
/// between them are pure whitespace.
fn assert_tiles(src: &str) -> Result<(), proptest::TestCaseError> {
    let tokens = lex(src);
    let mut pos = 0usize;
    for t in &tokens {
        prop_assert!(
            t.start >= pos,
            "token at {} starts before previous end {} in {src:?}",
            t.start,
            pos
        );
        prop_assert!(t.end > t.start, "empty token span in {src:?}");
        prop_assert!(t.end <= src.len(), "token overruns source in {src:?}");
        prop_assert!(
            src.is_char_boundary(t.start) && src.is_char_boundary(t.end),
            "token span not on char boundaries in {src:?}"
        );
        let gap = &src[pos..t.start];
        prop_assert!(
            gap.chars().all(|c| c.is_whitespace()),
            "non-whitespace gap {gap:?} in {src:?}"
        );
        pos = t.end;
    }
    let tail = &src[pos..];
    prop_assert!(
        tail.chars().all(|c| c.is_whitespace()),
        "non-whitespace tail {tail:?} in {src:?}"
    );
    Ok(())
}

/// One valid Rust fragment per entropy word; index 0 picks the shape.
fn fragment(word: u64) -> String {
    let payload = word >> 8;
    match word % 24 {
        0 => format!("ident_{payload}"),
        1 => "fn".to_string(),
        2 => format!("{payload}"),
        3 => format!("{:#x}", payload),
        4 => format!("{payload}.5f64"),
        5 => format!("\"str {payload}\""),
        6 => format!("r\"raw {payload}\""),
        7 => format!("r#\"hash \"quoted\" {payload}\"#"),
        8 => "r##\"deep \"# still inside\"##".to_string(),
        9 => "'a'".to_string(),
        10 => "'\\n'".to_string(),
        11 => "'\\u{1F600}'".to_string(),
        12 => format!("'lifetime_{payload}"),
        13 => "b'x'".to_string(),
        14 => format!("b\"bytes {payload}\""),
        15 => format!("// line comment {payload}\n"),
        16 => format!("/* block {payload} */"),
        17 => format!("/* outer /* nested {payload} */ tail */"),
        18 => "::<>".to_string(),
        19 => "+-*/%^&|".to_string(),
        20 => "..=".to_string(),
        21 => "r#match".to_string(),
        22 => format!("\"escape \\\" {payload}\""),
        23 => "'_".to_string(),
        _ => unreachable!(),
    }
}

/// Expected kind of the *first* token of each fragment shape.
fn first_kind(word: u64) -> TokenKind {
    match word % 24 {
        0 | 1 | 21 => TokenKind::Ident,
        2..=4 => TokenKind::NumLit,
        5 | 22 => TokenKind::StrLit,
        6..=8 => TokenKind::RawStrLit,
        9..=11 => TokenKind::CharLit,
        12 | 23 => TokenKind::Lifetime,
        13 => TokenKind::ByteCharLit,
        14 => TokenKind::ByteStrLit,
        15 => TokenKind::LineComment,
        16 | 17 => TokenKind::BlockComment,
        18..=20 => TokenKind::Punct,
        _ => unreachable!(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Token soup built from valid fragments tiles exactly and each
    /// fragment lexes to its expected leading token kind.
    #[test]
    fn token_soup_round_trips(words in prop::collection::vec(any::<u64>(), 0..40)) {
        let src: String = words
            .iter()
            .map(|&w| fragment(w))
            .collect::<Vec<_>>()
            .join(" ");
        assert_tiles(&src)?;

        // Each fragment, lexed alone, starts with the kind we expect.
        for &w in &words {
            let frag = fragment(w);
            let toks = lex(&frag);
            prop_assert!(!toks.is_empty(), "fragment {frag:?} lexed to nothing");
            prop_assert_eq!(toks[0].kind, first_kind(w), "fragment {:?}", frag);
        }
    }

    /// The lexer is total on arbitrary Unicode garbage: no panics and
    /// the tiling invariant still holds (unknown bytes become tokens,
    /// not holes).
    #[test]
    fn arbitrary_unicode_never_breaks_tiling(words in prop::collection::vec(any::<u32>(), 0..60)) {
        let src: String = words
            .iter()
            .map(|&w| char::from_u32(w % 0x11_0000).unwrap_or('\u{FFFD}'))
            .collect();
        assert_tiles(&src)?;
    }

    /// Block comments nest to arbitrary depth and lex as one token.
    #[test]
    fn nested_block_comments_lex_as_one(depth in 1usize..12, filler in any::<u64>()) {
        let mut src = String::new();
        for _ in 0..depth {
            src.push_str("/* ");
        }
        src.push_str(&format!("core {filler}"));
        for _ in 0..depth {
            src.push_str(" */");
        }
        let toks = lex(&src);
        prop_assert_eq!(toks.len(), 1, "source {:?}", src);
        prop_assert_eq!(toks[0].kind, TokenKind::BlockComment);
        prop_assert_eq!(toks[0].text(&src), src.as_str());
    }

    /// An unterminated block comment swallows the rest of the file as a
    /// single comment token rather than erroring.
    #[test]
    fn unterminated_block_comment_is_total(tail in prop::collection::vec(any::<u64>(), 0..8)) {
        let mut src = "/* open ".to_string();
        for &w in &tail {
            let frag = fragment(w);
            // A tail fragment containing `*/` (or opening a nested
            // comment) would change the comment structure on purpose —
            // skip those; this test is about the unterminated case.
            if frag.contains("*/") || frag.contains("/*") {
                continue;
            }
            src.push_str(&frag);
            src.push(' ');
        }
        let toks = lex(&src);
        prop_assert_eq!(toks.len(), 1, "source {:?}", src);
        prop_assert_eq!(toks[0].kind, TokenKind::BlockComment);
    }

    /// Raw strings with k hashes can contain quote-hash runs of length
    /// < k without terminating early.
    #[test]
    fn raw_string_hash_counting(hashes in 1usize..6, payload in any::<u64>()) {
        let h = "#".repeat(hashes);
        let inner_h = "#".repeat(hashes - 1);
        let src = format!("r{h}\"body \"{inner_h} more {payload}\"{h}");
        let toks = lex(&src);
        prop_assert_eq!(toks.len(), 1, "source {:?}", src);
        prop_assert_eq!(toks[0].kind, TokenKind::RawStrLit);
        prop_assert_eq!(toks[0].text(&src), src.as_str());
    }

    /// String literals absorb comment markers; comments absorb quotes.
    /// Interleaving them never confuses the lexer about where each ends.
    #[test]
    fn strings_and_comments_do_not_bleed(payload in any::<u64>()) {
        let src = format!("\"/* not a comment {payload} */\" /* \"not a string\" */ after");
        let toks = lex(&src);
        prop_assert_eq!(toks.len(), 3, "source {:?}", src);
        prop_assert_eq!(toks[0].kind, TokenKind::StrLit);
        prop_assert_eq!(toks[1].kind, TokenKind::BlockComment);
        prop_assert_eq!(toks[2].kind, TokenKind::Ident);
        prop_assert_eq!(toks[2].text(&src), "after");
    }

    /// Lifetimes vs char literals: `'a` followed by non-quote is a
    /// lifetime; `'a'` is a char. Mixing them in one source stays sorted.
    #[test]
    fn lifetime_char_disambiguation(n in 1usize..10) {
        let mut src = String::new();
        for i in 0..n {
            if i % 2 == 0 {
                src.push_str("&'a T ");
            } else {
                src.push_str("'x' ");
            }
        }
        let toks = lex(&src);
        let lifetimes = toks.iter().filter(|t| t.kind == TokenKind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == TokenKind::CharLit).count();
        prop_assert_eq!(lifetimes, n.div_ceil(2));
        prop_assert_eq!(chars, n / 2);
    }

    /// Line/column bookkeeping: every token's (line, col) agrees with a
    /// direct scan of the prefix before it.
    #[test]
    fn line_col_agree_with_prefix_scan(words in prop::collection::vec(any::<u64>(), 0..20)) {
        let src: String = words
            .iter()
            .map(|&w| fragment(w))
            .collect::<Vec<_>>()
            .join("\n");
        for t in lex(&src) {
            let prefix = &src[..t.start];
            let line = prefix.bytes().filter(|&b| b == b'\n').count() + 1;
            let col = prefix
                .rsplit_once('\n')
                .map_or(prefix, |(_, last)| last)
                .chars()
                .count()
                + 1;
            prop_assert_eq!(t.line as usize, line, "token at byte {} in {:?}", t.start, src);
            prop_assert_eq!(t.col as usize, col, "token at byte {} in {:?}", t.start, src);
        }
    }
}
