//! Fixture: panic-freedom rule.
//! Analyzed as `crates/lab/src/fixture.rs` (lab is a panic-free crate).

/// Every panicking form in non-test library code must be caught.
pub fn panicky(x: Option<u32>, y: Result<u32, String>) -> u32 {
    let a = x.unwrap();
    let b = y.expect("must be ok");
    if a > b {
        panic!("a exceeded b");
    }
    match a {
        0 => unreachable!(),
        1 => todo!(),
        2 => unimplemented!(),
        _ => a + b,
    }
}

/// Negative space: error propagation and idents that merely contain the
/// words (`unwrap_or`, a field named `expect`) stay clean.
pub fn fine(x: Option<u32>) -> Result<u32, String> {
    let a = x.unwrap_or(3);
    let b = x.unwrap_or_else(|| 4);
    let c = x.unwrap_or_default();
    Ok(a + b + c)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
