//! Fixture: hygiene rule.
//! Analyzed as `crates/expansion/src/fixture.rs` (library code; not a
//! bin target and not in the hygiene allow-list).

/// Debug output left in library code.
pub fn noisy(x: u32) -> u32 {
    println!("x = {x}");
    eprintln!("still here");
    print!("no newline");
    eprint!("also this");
    let y = dbg!(x + 1);
    y
}

/// Negative space: building strings (even with `format!`) is fine; the
/// rule only targets writes to the process's stdio.
pub fn fine(x: u32) -> String {
    format!("x = {x}")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_print() {
        println!("debugging a test is fine");
    }
}
