//! Fixture: hot-path-alloc rule.
//! Analyzed as `crates/graph/src/neighborhood.rs` — a configured
//! allocation-free hot-path module.

/// A scratch structure: constructors may allocate.
pub struct Scratch {
    marks: Vec<u32>,
    stack: Vec<u32>,
}

impl Scratch {
    /// Constructor: allocation is the whole point here.
    pub fn new(n: usize) -> Scratch {
        Scratch {
            marks: Vec::with_capacity(n),
            stack: vec![0; n],
        }
    }

    /// Prefixed constructors are exempt too.
    pub fn with_capacity(n: usize) -> Scratch {
        Scratch {
            marks: Vec::new(),
            stack: Vec::with_capacity(n),
        }
    }

    /// The hot kernel: every allocation token is a violation.
    pub fn step(&mut self, xs: &[u32]) -> usize {
        let copied = xs.to_vec();
        let doubled: Vec<u32> = xs.iter().map(|&x| x * 2).collect();
        let boxed = Box::new(xs.len());
        let local = vec![1u32, 2, 3];
        let owned = self.marks.clone();
        let s = format!("{}", xs.len());
        copied.len() + doubled.len() + *boxed + local.len() + owned.len() + s.len()
    }

    /// Negative space: reuse-only code is what the rule protects.
    pub fn step_clean(&mut self, xs: &[u32]) -> usize {
        self.stack.clear();
        for &x in xs {
            self.stack.push(x);
        }
        self.stack.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_allocate() {
        let v = vec![1u32, 2, 3];
        let mut s = Scratch::new(4);
        assert_eq!(s.step_clean(&v), 3);
    }
}
