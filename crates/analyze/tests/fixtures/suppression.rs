//! Fixture: `wx-allow` suppression semantics.
//! Analyzed as `crates/core/src/fixture.rs` with the workspace config.

use std::collections::HashSet;

/// A trailing suppression targets its own line.
pub fn trailing(xs: &[u32]) -> usize {
    let s: HashSet<u32> = xs.iter().copied().collect(); // wx-allow(determinism): membership only, never iterated
    s.len()
}

/// A standalone suppression targets the next code line (comments and
/// blank lines in between do not consume it).
pub fn standalone(xs: &[u32]) -> usize {
    // wx-allow(determinism): membership only, never iterated
    let s: HashSet<u32> = xs.iter().copied().collect();
    s.len()
}

/// One directive may name several rules.
pub fn multi(xs: &[u32], seed: u64) -> usize {
    // wx-allow(determinism, seed-discipline): fixture exercising multi-rule directives
    let s: HashSet<u64> = xs.iter().map(|&x| seed + x as u64).collect();
    s.len()
}

/// A directive with no reason is itself a violation, and it does not
/// suppress anything.
pub fn missing_reason(xs: &[u32]) -> usize {
    // wx-allow(determinism)
    let s: HashSet<u32> = xs.iter().copied().collect();
    s.len()
}

/// Unknown rule ids are rejected.
pub fn unknown_rule(x: u32) -> u32 {
    // wx-allow(made-up-rule): this rule does not exist
    x + 1
}

/// A suppression over a clean line is stale and must be flagged so
/// suppressions get cleaned up when the code they excused goes away.
pub fn stale(x: u32) -> u32 {
    // wx-allow(determinism): nothing on the next line needs this
    x + 1
}
