//! Fixture: determinism rule.
//! Analyzed as `crates/core/src/fixture.rs` with the workspace config
//! (`core` is a hash-container crate; this path is not timing-allowed).

use std::collections::HashMap;
use std::collections::HashSet;
use std::time::Instant;

/// Hash containers in report-producing code: iteration order leaks.
pub fn tally(xs: &[u32]) -> usize {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    let distinct: HashSet<u32> = xs.iter().copied().collect();
    counts.len() + distinct.len()
}

/// Wall-clock reads outside the timing harness.
pub fn timed() -> u64 {
    let t0 = Instant::now();
    let wall = std::time::SystemTime::now();
    let _ = wall;
    t0.elapsed().as_nanos() as u64
}

/// An OS-seeded RNG is non-reproducible anywhere in the workspace.
pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

/// Negative space: BTreeMap and deterministic RNG construction are the
/// sanctioned alternatives.
pub fn fine(xs: &[u32]) -> usize {
    let counts: std::collections::BTreeMap<u32, usize> =
        xs.iter().map(|&x| (x, 1)).collect();
    counts.len()
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn tests_may_use_hash_sets() {
        let s: HashSet<u32> = [1, 2].into_iter().collect();
        assert_eq!(s.len(), 2);
    }
}
