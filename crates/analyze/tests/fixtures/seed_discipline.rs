//! Fixture: seed-discipline rule.
//! Analyzed as `crates/graph/src/fixture.rs` with the workspace config.

/// The one blessed derivation site: arithmetic on seeds is fine here.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent ^ stream.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z ^ (z >> 31)
}

/// Ad-hoc seed arithmetic: every operator form must be caught.
pub fn bad_derivations(seed: u64, trial: u64) -> Vec<u64> {
    let a = seed + 1;
    let b = seed * 31 + trial;
    let c = seed ^ trial;
    let d = base_seed(trial) - 7;
    let mut run_seed = seed;
    run_seed += trial;
    let e = seed.wrapping_add(trial);
    vec![a, b, c, d, run_seed, e]
}

fn base_seed(x: u64) -> u64 {
    x
}

/// Negative space: passing a seed through, comparing it, or using it as
/// a struct field is not arithmetic and must stay clean.
pub fn fine(seed: u64, other: u64) -> bool {
    let reseeded = derive_seed(seed, 3);
    reseeded == other && seed != 0
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_do_seed_math() {
        let seed = 5u64;
        let _ = seed + 1;
    }
}
