//! End-to-end tests for the baseline ratchet and the `wx-analyze` CLI.
//!
//! These build tiny throwaway workspaces under the system temp dir and
//! drive the real binary (`CARGO_BIN_EXE_wx-analyze`) through the
//! bless → check → regress → ratchet-down lifecycle, asserting on exit
//! codes and on the `file:line` coordinates in the output — the
//! acceptance criterion for the linter as a CI gate.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

use wx_analyze::{analyze_source, Baseline, Config, RatchetError};

/// A fresh scratch workspace; removed on drop.
struct TempWs {
    root: PathBuf,
}

impl TempWs {
    fn new(tag: &str) -> TempWs {
        let root =
            std::env::temp_dir().join(format!("wx-analyze-test-{}-{tag}", std::process::id()));
        // A stale dir from a crashed previous run must not leak files in.
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/demo/src")).expect("mkdir");
        TempWs { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(path, content).expect("write");
    }

    fn run(&self, args: &[&str]) -> (i32, String, String) {
        let out = Command::new(env!("CARGO_BIN_EXE_wx-analyze"))
            .arg("--root")
            .arg(&self.root)
            .args(args)
            .output()
            .expect("spawn wx-analyze");
        (
            out.status.code().unwrap_or(-1),
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    }
}

impl Drop for TempWs {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

const CLEAN: &str = "pub fn ok(x: u32) -> u32 {\n    x + 1\n}\n";

/// One seed-discipline violation on line 2 column 5.
const SEEDY: &str = "pub fn bad(seed: u64) -> u64 {\n    seed + 1\n}\n";

/// Two violations: seed arithmetic (line 2) and a hot-path `.to_vec()`
/// is not in play here (demo is not a hot-path module), so use a
/// panic-freedom hit (line 3) instead.
const SEEDY_AND_PANICKY: &str = "pub fn bad(seed: u64, x: Option<u64>) -> u64 {\n    let s = seed + 1;\n    s + x.unwrap()\n}\n";

#[test]
fn report_mode_exits_nonzero_with_correct_location() {
    let ws = TempWs::new("report");
    ws.write("crates/demo/src/lib.rs", SEEDY);
    let (code, stdout, _) = ws.run(&[]);
    assert_eq!(code, 1, "violations must fail report mode: {stdout}");
    assert!(
        stdout.contains("crates/demo/src/lib.rs:2:5: [seed-discipline]"),
        "wrong location in: {stdout}"
    );
}

#[test]
fn report_mode_exits_zero_on_clean_tree() {
    let ws = TempWs::new("clean");
    ws.write("crates/demo/src/lib.rs", CLEAN);
    let (code, stdout, _) = ws.run(&[]);
    assert_eq!(code, 0, "clean tree must pass: {stdout}");
}

#[test]
fn check_without_baseline_fails_with_guidance() {
    let ws = TempWs::new("nobase");
    ws.write("crates/demo/src/lib.rs", CLEAN);
    let (code, _, stderr) = ws.run(&["--check"]);
    assert_eq!(code, 2, "missing baseline is a usage error");
    assert!(
        stderr.contains("--bless"),
        "should point at --bless: {stderr}"
    );
}

#[test]
fn bless_then_check_passes_then_new_violation_fails() {
    let ws = TempWs::new("lifecycle");
    ws.write("crates/demo/src/lib.rs", SEEDY);

    let (code, _, _) = ws.run(&["--bless"]);
    assert_eq!(code, 0, "bless must succeed");
    let (code, stdout, _) = ws.run(&["--check"]);
    assert_eq!(code, 0, "baselined violation must pass check: {stdout}");
    assert!(stdout.contains("OK (1 violation(s) currently baselined)"));

    // Regress: a second violation in the same file must fail with the
    // new finding's exact coordinates.
    ws.write("crates/demo/src/lib.rs", SEEDY_AND_PANICKY);
    let (code, stdout, _) = ws.run(&["--check"]);
    assert_eq!(code, 1, "new violation must fail check: {stdout}");
    assert!(
        stdout.contains("crates/demo/src/lib.rs:3:11: [panic-freedom]"),
        "new finding with file:line must be printed: {stdout}"
    );
}

#[test]
fn fixing_a_baselined_violation_forces_ratchet_down() {
    let ws = TempWs::new("ratchet");
    ws.write("crates/demo/src/lib.rs", SEEDY);
    let (code, _, _) = ws.run(&["--bless"]);
    assert_eq!(code, 0);

    // Fix the violation: check now fails because the baseline is stale,
    // forcing a --bless that locks in the lower count.
    ws.write("crates/demo/src/lib.rs", CLEAN);
    let (code, stdout, _) = ws.run(&["--check"]);
    assert_eq!(code, 1, "stale baseline entry must fail check: {stdout}");
    assert!(
        stdout.contains("STALE: crates/demo/src/lib.rs: [seed-discipline]"),
        "should name the stale entry: {stdout}"
    );

    let (code, _, _) = ws.run(&["--bless"]);
    assert_eq!(code, 0);
    let (code, stdout, _) = ws.run(&["--check"]);
    assert_eq!(code, 0, "after ratcheting down, check passes: {stdout}");
    assert!(stdout.contains("OK (0 violation(s) currently baselined)"));
}

#[test]
fn bless_refuses_meta_violations() {
    let ws = TempWs::new("meta");
    ws.write(
        "crates/demo/src/lib.rs",
        "// wx-allow(determinism)\npub fn f() -> u32 {\n    3\n}\n",
    );
    let (code, stdout, stderr) = ws.run(&["--bless"]);
    assert_eq!(
        code, 2,
        "bad-allow must not be baselined: {stdout} {stderr}"
    );
    assert!(
        stderr.contains("wx-allow"),
        "should explain the refusal: {stderr}"
    );
}

#[test]
fn json_format_is_parseable_and_carries_locations() {
    let ws = TempWs::new("json");
    ws.write("crates/demo/src/lib.rs", SEEDY);
    let (code, stdout, _) = ws.run(&["--format", "json"]);
    assert_eq!(code, 1);
    let parsed = wx_analyze::json::parse(&stdout).expect("valid JSON");
    let diags = parsed
        .get("diagnostics")
        .and_then(|d| d.as_array())
        .expect("diagnostics array");
    assert_eq!(diags.len(), 1);
    let d = &diags[0];
    assert_eq!(
        d.get("rule").and_then(|v| v.as_str()),
        Some("seed-discipline")
    );
    assert_eq!(
        d.get("file").and_then(|v| v.as_str()),
        Some("crates/demo/src/lib.rs")
    );
    assert_eq!(d.get("line").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(d.get("col").and_then(|v| v.as_u64()), Some(5));
}

#[test]
fn hot_path_to_vec_is_caught_end_to_end() {
    // The acceptance scenario from the issue: seeding a hot-path
    // `.to_vec()` into a configured module makes `--check` exit nonzero
    // with the right file:line. The demo workspace uses the real
    // workspace config, so plant the file at a configured hot path.
    let ws = TempWs::new("hotpath");
    ws.write("crates/demo/src/lib.rs", CLEAN);
    let (code, _, _) = ws.run(&["--bless"]);
    assert_eq!(code, 0);

    ws.write(
        "crates/graph/src/scratch.rs",
        "pub fn kernel(xs: &[u32]) -> usize {\n    xs.to_vec().len()\n}\n",
    );
    let (code, stdout, _) = ws.run(&["--check"]);
    assert_eq!(code, 1, "hot-path allocation must fail check: {stdout}");
    assert!(
        stdout.contains("crates/graph/src/scratch.rs:2:8: [hot-path-alloc]"),
        "wrong location in: {stdout}"
    );
}

// ---------------------------------------------------------------------
// Baseline library-level semantics (no subprocess).
// ---------------------------------------------------------------------

fn diags_for(src: &str) -> Vec<wx_analyze::Diagnostic> {
    analyze_source("crates/demo/src/lib.rs", src, &Config::workspace())
}

#[test]
fn compare_is_empty_at_parity_and_detects_both_directions() {
    let two = diags_for(SEEDY_AND_PANICKY);
    let one = diags_for(SEEDY);
    let base = Baseline::from_diagnostics(&one);

    assert!(base.compare(&one).is_empty(), "parity must be clean");

    let worse = base.compare(&two);
    assert!(
        worse.iter().any(|e| matches!(e, RatchetError::New { .. })),
        "count above baseline is a NEW error: {worse:?}"
    );

    let better = base.compare(&diags_for(CLEAN));
    assert!(
        better
            .iter()
            .all(|e| matches!(e, RatchetError::Stale { .. })),
        "count below baseline is a STALE error: {better:?}"
    );
    assert_eq!(better.len(), 1);
}

#[test]
fn baseline_json_round_trips() {
    let base = Baseline::from_diagnostics(&diags_for(SEEDY_AND_PANICKY));
    let parsed = Baseline::parse(&base.to_json()).expect("round-trip");
    assert!(parsed.compare(&diags_for(SEEDY_AND_PANICKY)).is_empty());
}

#[test]
fn baseline_parse_rejects_corruption() {
    assert!(Baseline::parse("not json").is_err());
    assert!(Baseline::parse("{\"version\": 99, \"entries\": []}").is_err());
    let zero = "{\"version\": 1, \"entries\": [{\"rule\": \"hygiene\", \"file\": \"f.rs\", \"count\": 0}]}";
    assert!(Baseline::parse(zero).is_err(), "zero counts are malformed");
}
