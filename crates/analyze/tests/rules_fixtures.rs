//! Golden-file tests: each fixture under `tests/fixtures/` is analyzed
//! under a fixed synthetic workspace path and the rendered diagnostics
//! must match the committed `.expected` file byte-for-byte.
//!
//! To regenerate the goldens after an intentional rule change:
//!
//! ```text
//! WX_FIXTURE_BLESS=1 cargo test -p wx-analyze --test rules_fixtures
//! ```
//!
//! then review the diff like any other code change.

use wx_analyze::{analyze_source, Config};

/// Runs one fixture and compares (or blesses) its golden file.
fn check_fixture(name: &str, rel_path: &str, src: &str, expected: &str) {
    let cfg = Config::workspace();
    let diags = analyze_source(rel_path, src, &cfg);
    let mut rendered = diags
        .iter()
        .map(|d| d.render())
        .collect::<Vec<_>>()
        .join("\n");
    if !rendered.is_empty() {
        rendered.push('\n');
    }

    if std::env::var_os("WX_FIXTURE_BLESS").is_some() {
        let path = format!(
            "{}/tests/fixtures/{name}.expected",
            env!("CARGO_MANIFEST_DIR")
        );
        std::fs::write(&path, &rendered).expect("write golden");
        return;
    }

    assert_eq!(
        rendered, expected,
        "fixture `{name}` diverged from its golden file; \
         run with WX_FIXTURE_BLESS=1 and review the diff if intentional"
    );
}

macro_rules! fixture_test {
    ($test_name:ident, $fixture:literal, $rel_path:literal) => {
        #[test]
        fn $test_name() {
            check_fixture(
                $fixture,
                $rel_path,
                include_str!(concat!("fixtures/", $fixture, ".rs")),
                include_str!(concat!("fixtures/", $fixture, ".expected")),
            );
        }
    };
}

fixture_test!(
    seed_discipline_fixture,
    "seed_discipline",
    "crates/graph/src/fixture.rs"
);
fixture_test!(
    determinism_fixture,
    "determinism",
    "crates/core/src/fixture.rs"
);
fixture_test!(
    panic_freedom_fixture,
    "panic_freedom",
    "crates/lab/src/fixture.rs"
);
fixture_test!(
    hot_path_alloc_fixture,
    "hot_path_alloc",
    "crates/graph/src/neighborhood.rs"
);
fixture_test!(
    hygiene_fixture,
    "hygiene",
    "crates/expansion/src/fixture.rs"
);
fixture_test!(
    suppression_fixture,
    "suppression",
    "crates/core/src/fixture.rs"
);

/// Panic-freedom outside the strict crates still reports (the baseline
/// ratchet, not the rule, is what tolerates those) — same fixture under
/// a non-strict crate path must produce identical findings.
#[test]
fn panic_freedom_reports_in_ratcheted_crates_too() {
    let src = include_str!("fixtures/panic_freedom.rs");
    let cfg = Config::workspace();
    let strict = analyze_source("crates/lab/src/fixture.rs", src, &cfg);
    let ratcheted = analyze_source("crates/graph/src/fixture.rs", src, &cfg);
    assert_eq!(strict.len(), ratcheted.len());
    for (a, b) in strict.iter().zip(&ratcheted) {
        assert_eq!(a.rule, b.rule);
        assert_eq!((a.line, a.col), (b.line, b.col));
    }
}

/// Files in bin targets are exempt from panic-freedom and hygiene but
/// not from determinism.
#[test]
fn bin_targets_keep_determinism_but_drop_panic_and_hygiene() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n\
               \x20   println!(\"{x:?}\");\n\
               \x20   let mut m = std::collections::HashMap::new();\n\
               \x20   m.insert(1u32, 2u32);\n\
               \x20   x.unwrap()\n\
               }\n";
    let cfg = Config::workspace();
    let diags = analyze_source("crates/lab/src/bin/wx.rs", src, &cfg);
    let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
    assert_eq!(rules, vec!["determinism"]);
}

/// Test targets produce no diagnostics at all (and no unused-allow
/// noise for suppressions they contain).
#[test]
fn test_targets_are_fully_exempt() {
    let src = "// wx-allow(determinism): would be unused in lib code\n\
               pub fn f() -> usize {\n\
               \x20   let s: std::collections::HashSet<u32> = Default::default();\n\
               \x20   s.len()\n\
               }\n";
    let cfg = Config::workspace();
    let diags = analyze_source("crates/core/tests/fixture.rs", src, &cfg);
    assert!(diags.is_empty(), "got: {diags:?}");
}
