//! The `wx-analyze` CLI.
//!
//! ```text
//! wx-analyze [--root PATH] [--baseline PATH] [--format human|json]
//!            [--check | --bless | --list-rules]
//! ```
//!
//! * default — print every current violation (ignoring the baseline);
//!   exit 1 if any.
//! * `--check` — compare against the committed baseline; exit 1 on any
//!   *new* violation, any *stale* baseline entry (forced ratchet-down),
//!   or any malformed/unused `wx-allow`.
//! * `--bless` — regenerate the baseline from the current violations.
//! * `--list-rules` — print the rule catalog.

use std::path::PathBuf;
use std::process::ExitCode;
use wx_analyze::json::JsonValue;
use wx_analyze::{analyze_workspace, Baseline, Config, Diagnostic};

const DEFAULT_BASELINE: &str = "analyze-baseline.json";

enum Mode {
    Report,
    Check,
    Bless,
    ListRules,
}

enum Format {
    Human,
    Json,
}

struct Args {
    root: PathBuf,
    baseline: PathBuf,
    mode: Mode,
    format: Format,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut root = PathBuf::from(".");
    let mut baseline: Option<PathBuf> = None;
    let mut mode = Mode::Report;
    let mut format = Format::Human;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => mode = Mode::Check,
            "--bless" => mode = Mode::Bless,
            "--list-rules" => mode = Mode::ListRules,
            "--root" => {
                root = PathBuf::from(it.next().ok_or("--root needs a path")?);
            }
            "--baseline" => {
                baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a path")?));
            }
            "--format" => match it.next().map(String::as_str) {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                other => return Err(format!("--format must be human|json, got {other:?}")),
            },
            "--help" | "-h" => return Err(USAGE.trim_end().to_string()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    let baseline = baseline.unwrap_or_else(|| root.join(DEFAULT_BASELINE));
    Ok(Args {
        root,
        baseline,
        mode,
        format,
    })
}

const USAGE: &str = "\
usage: wx-analyze [--root PATH] [--baseline PATH] [--format human|json]
                  [--check | --bless | --list-rules]
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("wx-analyze: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &Args) -> Result<ExitCode, String> {
    if let Mode::ListRules = args.mode {
        print_rule_catalog();
        return Ok(ExitCode::SUCCESS);
    }
    let cfg = Config::workspace();
    if !args.root.join("crates").is_dir() {
        return Err(format!(
            "{} has no crates/ directory — pass the workspace root via --root",
            args.root.display()
        ));
    }
    let diags = analyze_workspace(&args.root, &cfg)?;
    match args.mode {
        Mode::Report => {
            match args.format {
                Format::Human => {
                    for d in &diags {
                        println!("{}", d.render());
                    }
                    println!(
                        "wx-analyze: {} violation(s) across the workspace (baseline ignored)",
                        diags.len()
                    );
                }
                Format::Json => print_json_report(&diags, &[]),
            }
            Ok(exit_if(diags.is_empty()))
        }
        Mode::Bless => {
            let meta: Vec<&Diagnostic> = diags.iter().filter(|d| is_meta(d)).collect();
            if !meta.is_empty() {
                for d in &meta {
                    eprintln!("{}", d.render());
                }
                return Err(format!(
                    "{} malformed/unused wx-allow comment(s) — fix them before blessing",
                    meta.len()
                ));
            }
            let baseline = Baseline::from_diagnostics(&diags);
            std::fs::write(&args.baseline, baseline.to_json())
                .map_err(|e| format!("writing {}: {e}", args.baseline.display()))?;
            println!(
                "wx-analyze: blessed {} baselined violation(s) across {} (rule, file) pair(s) \
                 into {}",
                baseline.entries.values().sum::<u64>(),
                baseline.entries.len(),
                args.baseline.display()
            );
            Ok(ExitCode::SUCCESS)
        }
        Mode::Check => {
            let text = std::fs::read_to_string(&args.baseline).map_err(|e| {
                format!(
                    "reading baseline {}: {e} (run `wx-analyze --bless` to create it)",
                    args.baseline.display()
                )
            })?;
            let baseline = Baseline::parse(&text)
                .map_err(|e| format!("parsing {}: {e}", args.baseline.display()))?;
            let ratchet = baseline.compare(&diags);
            let meta: Vec<&Diagnostic> = diags.iter().filter(|d| is_meta(d)).collect();
            let failing = !ratchet.is_empty() || !meta.is_empty();
            match args.format {
                Format::Human => {
                    for e in &ratchet {
                        println!("{}", e.render());
                    }
                    for d in &meta {
                        println!("{}", d.render());
                    }
                    // Show the concrete diagnostics behind every NEW entry so
                    // the offending file:line is one click away.
                    for e in &ratchet {
                        if let wx_analyze::RatchetError::New { rule, file, .. } = e {
                            for d in diags.iter().filter(|d| d.rule == *rule && &d.file == file) {
                                println!("  {}", d.render());
                            }
                        }
                    }
                    let baselined: u64 = baseline.entries.values().sum();
                    if failing {
                        println!("wx-analyze --check: FAILED");
                    } else {
                        println!(
                            "wx-analyze --check: OK ({} violation(s) currently baselined)",
                            baselined
                        );
                    }
                }
                Format::Json => {
                    let new_diags: Vec<Diagnostic> = diags
                        .iter()
                        .filter(|d| {
                            is_meta(d)
                                || ratchet.iter().any(|e| {
                                    matches!(e, wx_analyze::RatchetError::New { rule, file, .. }
                                        if d.rule == *rule && &d.file == file)
                                })
                        })
                        .cloned()
                        .collect();
                    print_json_report(&new_diags, &ratchet);
                }
            }
            Ok(exit_if(!failing))
        }
        Mode::ListRules => unreachable!("handled above"),
    }
}

fn is_meta(d: &Diagnostic) -> bool {
    d.rule == wx_analyze::rules::BAD_ALLOW || d.rule == wx_analyze::rules::UNUSED_ALLOW
}

fn exit_if(ok: bool) -> ExitCode {
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn print_json_report(diags: &[Diagnostic], ratchet: &[wx_analyze::RatchetError]) {
    let obj = JsonValue::Object(vec![
        (
            "diagnostics".to_string(),
            JsonValue::Array(diags.iter().map(Diagnostic::to_json).collect()),
        ),
        (
            "ratchet_errors".to_string(),
            JsonValue::Array(
                ratchet
                    .iter()
                    .map(|e| JsonValue::String(e.render()))
                    .collect(),
            ),
        ),
        ("total".to_string(), JsonValue::Number(diags.len() as f64)),
    ]);
    print!("{}", obj.pretty());
}

fn print_rule_catalog() {
    println!("wx-analyze rule catalog (see crates/analyze/RULES.md):");
    println!();
    println!("  seed-discipline   arithmetic on seed values outside derive_seed");
    println!("  determinism       HashMap/HashSet in report-producing crates; Instant::now/");
    println!("                    SystemTime outside wx_trace::clock; thread_rng anywhere");
    println!("  panic-freedom     unwrap/expect/panic!/unreachable!/todo! in library code");
    println!("  hot-path-alloc    allocation in the allocation-free hot-path modules");
    println!("  hygiene           dbg!/println!/eprintln! in library code");
    println!("  bad-allow         malformed wx-allow comment (meta, not suppressible)");
    println!("  unused-allow      wx-allow that suppresses nothing (meta, not suppressible)");
    println!();
    println!("suppress with: // wx-allow(rule-id): reason   (reason mandatory)");
}
