//! The `analyze-baseline.json` ratchet.
//!
//! Pre-existing violations are recorded as per-`(rule, file)` counts in a
//! committed baseline. `wx-analyze --check` fails when a count **grows**
//! (a new violation shipped) and also when a count **shrinks** or a file
//! disappears (the baseline is stale: the fix must be locked in with
//! `--bless` so the violation cannot come back). The ratchet therefore only
//! ever moves down.

use crate::diagnostics::Diagnostic;
use crate::json::{self, JsonValue};
use std::collections::BTreeMap;

/// Per-(rule, file) violation counts, deterministically ordered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `(rule, file) → count`, sorted by key for byte-stable serialization.
    pub entries: BTreeMap<(String, String), u64>,
}

/// One ratchet comparison failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RatchetError {
    /// More violations than the baseline records: new ones shipped.
    New {
        /// Rule id.
        rule: String,
        /// Offending file.
        file: String,
        /// Current count.
        current: u64,
        /// Baselined count.
        baselined: u64,
    },
    /// Fewer violations than the baseline records: bless the fix.
    Stale {
        /// Rule id.
        rule: String,
        /// File whose entry no longer (fully) fires.
        file: String,
        /// Current count.
        current: u64,
        /// Baselined count.
        baselined: u64,
    },
}

impl RatchetError {
    /// One-line human rendering.
    pub fn render(&self) -> String {
        match self {
            RatchetError::New {
                rule,
                file,
                current,
                baselined,
            } => format!(
                "NEW: {file}: [{rule}] {current} violation(s), baseline allows {baselined} — \
                 fix them or wx-allow with a reason"
            ),
            RatchetError::Stale {
                rule,
                file,
                current,
                baselined,
            } => format!(
                "STALE: {file}: [{rule}] baseline records {baselined} but only {current} \
                 fire — run `wx-analyze --bless` to ratchet the baseline down"
            ),
        }
    }
}

impl Baseline {
    /// Builds a baseline from a diagnostic list (meta rules excluded: a
    /// malformed `wx-allow` must never be baselined away).
    pub fn from_diagnostics(diags: &[Diagnostic]) -> Baseline {
        let mut entries: BTreeMap<(String, String), u64> = BTreeMap::new();
        for d in diags {
            if d.rule == crate::rules::BAD_ALLOW || d.rule == crate::rules::UNUSED_ALLOW {
                continue;
            }
            *entries
                .entry((d.rule.to_string(), d.file.clone()))
                .or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// The diagnostics in `diags` that are *not* covered by this baseline
    /// (meta-rule diagnostics always count), plus the ratchet errors.
    pub fn compare(&self, diags: &[Diagnostic]) -> Vec<RatchetError> {
        let current = Baseline::from_diagnostics(diags);
        let mut errors = Vec::new();
        for (key, &cur) in &current.entries {
            let base = self.entries.get(key).copied().unwrap_or(0);
            if cur > base {
                errors.push(RatchetError::New {
                    rule: key.0.clone(),
                    file: key.1.clone(),
                    current: cur,
                    baselined: base,
                });
            } else if cur < base {
                errors.push(RatchetError::Stale {
                    rule: key.0.clone(),
                    file: key.1.clone(),
                    current: cur,
                    baselined: base,
                });
            }
        }
        for (key, &base) in &self.entries {
            if !current.entries.contains_key(key) {
                errors.push(RatchetError::Stale {
                    rule: key.0.clone(),
                    file: key.1.clone(),
                    current: 0,
                    baselined: base,
                });
            }
        }
        errors
    }

    /// Serializes to the committed JSON format (byte-deterministic).
    pub fn to_json(&self) -> String {
        let entries: Vec<JsonValue> = self
            .entries
            .iter()
            .map(|((rule, file), count)| {
                JsonValue::Object(vec![
                    ("rule".to_string(), JsonValue::String(rule.clone())),
                    ("file".to_string(), JsonValue::String(file.clone())),
                    ("count".to_string(), JsonValue::Number(*count as f64)),
                ])
            })
            .collect();
        JsonValue::Object(vec![
            ("version".to_string(), JsonValue::Number(1.0)),
            ("entries".to_string(), JsonValue::Array(entries)),
        ])
        .pretty()
    }

    /// Parses the committed JSON format.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let v = json::parse(text)?;
        match v.get("version").and_then(JsonValue::as_u64) {
            Some(1) => {}
            other => return Err(format!("unsupported baseline version {other:?}")),
        }
        let mut entries = BTreeMap::new();
        for e in v
            .get("entries")
            .and_then(JsonValue::as_array)
            .ok_or("baseline missing `entries` array")?
        {
            let rule = e
                .get("rule")
                .and_then(JsonValue::as_str)
                .ok_or("entry missing `rule`")?;
            let file = e
                .get("file")
                .and_then(JsonValue::as_str)
                .ok_or("entry missing `file`")?;
            let count = e
                .get("count")
                .and_then(JsonValue::as_u64)
                .ok_or("entry missing `count`")?;
            if count == 0 {
                return Err(format!("zero-count baseline entry for {file} [{rule}]"));
            }
            if entries
                .insert((rule.to_string(), file.to_string()), count)
                .is_some()
            {
                return Err(format!("duplicate baseline entry for {file} [{rule}]"));
            }
        }
        Ok(Baseline { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, file: &str) -> Diagnostic {
        Diagnostic {
            rule,
            file: file.to_string(),
            line: 1,
            col: 1,
            message: String::new(),
        }
    }

    #[test]
    fn round_trips_json() {
        let b = Baseline::from_diagnostics(&[
            diag("panic-freedom", "crates/a/src/lib.rs"),
            diag("panic-freedom", "crates/a/src/lib.rs"),
            diag("hygiene", "crates/b/src/lib.rs"),
        ]);
        let text = b.to_json();
        assert_eq!(Baseline::parse(&text).expect("parses"), b);
    }

    #[test]
    fn new_violation_fails_ratchet() {
        let base = Baseline::from_diagnostics(&[diag("hygiene", "crates/b/src/lib.rs")]);
        let now = [
            diag("hygiene", "crates/b/src/lib.rs"),
            diag("hygiene", "crates/b/src/lib.rs"),
        ];
        let errs = base.compare(&now);
        assert_eq!(errs.len(), 1);
        assert!(matches!(
            errs[0],
            RatchetError::New {
                current: 2,
                baselined: 1,
                ..
            }
        ));
    }

    #[test]
    fn fixed_violation_forces_ratchet_down() {
        let base = Baseline::from_diagnostics(&[
            diag("hygiene", "crates/b/src/lib.rs"),
            diag("panic-freedom", "crates/a/src/lib.rs"),
        ]);
        let errs = base.compare(&[diag("hygiene", "crates/b/src/lib.rs")]);
        assert_eq!(errs.len(), 1);
        assert!(matches!(
            errs[0],
            RatchetError::Stale {
                current: 0,
                baselined: 1,
                ..
            }
        ));
    }

    #[test]
    fn equal_counts_pass() {
        let base = Baseline::from_diagnostics(&[diag("hygiene", "crates/b/src/lib.rs")]);
        assert!(base
            .compare(&[diag("hygiene", "crates/b/src/lib.rs")])
            .is_empty());
    }

    #[test]
    fn meta_rules_are_never_baselined() {
        let b = Baseline::from_diagnostics(&[diag("bad-allow", "crates/a/src/lib.rs")]);
        assert!(b.entries.is_empty());
        // …so a bad-allow always surfaces as a NEW ratchet error? No — it is
        // excluded from counts entirely; the driver treats meta diagnostics
        // as hard errors regardless of the baseline.
    }
}
