//! The workspace invariant configuration the rules are wired to.
//!
//! Paths are workspace-relative with forward slashes. The default
//! configuration ([`Config::workspace`]) encodes this repo's real
//! invariants; the fixture tests build custom configs to exercise the rules
//! in isolation. `RULES.md` documents every entry.

/// Which files and crates each rule applies to.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates (directory names under `crates/`) whose non-test code must not
    /// use `HashMap`/`HashSet`: their iteration order can leak into reports
    /// or RNG draw sequences.
    pub hash_container_crates: Vec<String>,
    /// Path prefixes where wall-clock reads (`Instant::now`, `SystemTime`,
    /// `thread_rng`) are allowed — the timing harnesses whose entire purpose
    /// is measuring wall-clock.
    pub timing_allowed: Vec<String>,
    /// Path prefixes of the allocation-free hot-path modules: allocation
    /// tokens are forbidden there outside constructor functions.
    pub hot_path_modules: Vec<String>,
    /// Path prefixes where the hygiene rule tolerates `println!`/`eprintln!`:
    /// the CLI presentation layer (stdout is its interface).
    pub hygiene_allowed: Vec<String>,
    /// Function names treated as constructors by the hot-path rule
    /// (exact match, or any name starting with `new_`/`with_`/`from_`).
    pub constructor_names: Vec<String>,
    /// Crates whose non-test library code must be entirely panic-free
    /// (violations elsewhere are ratcheted via the baseline).
    pub panic_free_crates: Vec<String>,
}

impl Config {
    /// The committed configuration for this workspace.
    pub fn workspace() -> Config {
        let s = |xs: &[&str]| xs.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        Config {
            // Every library crate that feeds bytes into a report, plus the
            // graph/constructions substrate whose structures those crates
            // consume.
            hash_container_crates: s(&[
                "core",
                "lab",
                "bench",
                "expansion",
                "graph",
                "constructions",
                "spokesman",
                "radio",
                "trace",
                "serve",
            ]),
            // The sanctioned clock lives in wx-trace; everything else —
            // including the bench harnesses, which used to carry a
            // carve-out here — must go through `wx_trace::Clock` or spans.
            timing_allowed: s(&["crates/trace/src/clock.rs"]),
            hot_path_modules: s(&[
                "crates/graph/src/scratch.rs",
                "crates/graph/src/neighborhood.rs",
                "crates/graph/src/disk.rs",
                "crates/graph/src/mmap.rs",
                "crates/radio/src/workspace.rs",
                "crates/radio/src/protocols/",
                "crates/radio/src/bitslice.rs",
            ]),
            hygiene_allowed: s(&["crates/lab/src/cli.rs", "crates/serve/src/cli.rs"]),
            constructor_names: s(&["new", "default", "build", "empty"]),
            panic_free_crates: s(&["lab", "core", "trace", "serve"]),
        }
    }
}

/// How one file is classified from its path alone.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// The crate directory name under `crates/` (e.g. `graph`).
    pub crate_name: String,
    /// `true` for integration-test / bench targets (`tests/`, `benches/`).
    pub is_test_target: bool,
    /// `true` for binary targets (`src/bin/`, `main.rs`, `examples/`).
    pub is_bin: bool,
}

/// Classifies a workspace-relative path (`crates/<name>/…`). Returns `None`
/// for paths outside `crates/`, which the analyzer does not scan.
pub fn classify(rel_path: &str) -> Option<FileClass> {
    let mut parts = rel_path.split('/');
    if parts.next()? != "crates" {
        return None;
    }
    let crate_name = parts.next()?.to_string();
    let rest: Vec<&str> = parts.collect();
    if rest.is_empty() {
        return None;
    }
    let is_test_target = rest
        .iter()
        .any(|p| *p == "tests" || *p == "benches" || *p == "examples");
    let is_bin = rest.contains(&"bin") || rest.last() == Some(&"main.rs");
    Some(FileClass {
        crate_name,
        is_test_target,
        is_bin,
    })
}

/// `true` when `path` starts with any of the given prefixes.
pub fn matches_any_prefix(path: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p.as_str()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_lib_test_bin() {
        let lib = classify("crates/graph/src/scratch.rs").unwrap();
        assert_eq!(lib.crate_name, "graph");
        assert!(!lib.is_test_target && !lib.is_bin);

        let test = classify("crates/graph/tests/properties.rs").unwrap();
        assert!(test.is_test_target);

        let bin = classify("crates/lab/src/bin/wx.rs").unwrap();
        assert!(bin.is_bin);

        let main = classify("crates/lab/src/main.rs").unwrap();
        assert!(main.is_bin);

        assert!(classify("shims/serde/src/lib.rs").is_none());
        assert!(classify("crates/graph").is_none());
    }

    #[test]
    fn workspace_config_names_real_modules() {
        let cfg = Config::workspace();
        assert!(matches_any_prefix(
            "crates/graph/src/scratch.rs",
            &cfg.hot_path_modules
        ));
        assert!(matches_any_prefix(
            "crates/radio/src/protocols/decay.rs",
            &cfg.hot_path_modules
        ));
        assert!(matches_any_prefix(
            "crates/radio/src/bitslice.rs",
            &cfg.hot_path_modules
        ));
        // the out-of-core layer serves neighborhood queries straight off a
        // mapping and streams conversions — both are allocation-audited
        assert!(matches_any_prefix(
            "crates/graph/src/mmap.rs",
            &cfg.hot_path_modules
        ));
        assert!(matches_any_prefix(
            "crates/graph/src/disk.rs",
            &cfg.hot_path_modules
        ));
        assert!(!matches_any_prefix(
            "crates/radio/src/simulator.rs",
            &cfg.hot_path_modules
        ));
        // the serving layer feeds report bytes straight to clients, so it
        // carries the determinism + panic-freedom contracts; its CLI file
        // is the presentation layer
        assert!(cfg.hash_container_crates.iter().any(|c| c == "serve"));
        assert!(cfg.panic_free_crates.iter().any(|c| c == "serve"));
        assert!(matches_any_prefix(
            "crates/serve/src/cli.rs",
            &cfg.hygiene_allowed
        ));
        assert!(!matches_any_prefix(
            "crates/serve/src/service.rs",
            &cfg.hygiene_allowed
        ));
    }
}
