//! A minimal JSON value, writer, and recursive-descent parser.
//!
//! `wx-analyze` is deliberately dependency-free (it is the gate everything
//! else builds under, so it must not depend on what it checks), which rules
//! out the workspace serde shims. The subset here — objects with string
//! keys, arrays, strings, finite numbers, booleans, null — is all the
//! baseline file and `--format json` output need.

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (the baseline only stores small integers).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order is preserved so output is deterministic.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object node.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The node as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The node as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The node's array elements, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(xs) => Some(xs),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline —
    /// byte-deterministic for a given value.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => {
                if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(xs) => {
                if xs.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    x.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Errors carry a byte offset and message.
pub fn parse(src: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'s> {
    bytes: &'s [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .map(|b| b.is_ascii_whitespace())
            .unwrap_or(false)
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while self
            .peek()
            .map(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
            .unwrap_or(false)
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid utf8 in number".to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|e| format!("bad number `{text}` at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf8 in string".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(out));
                }
                other => return Err(format!("expected , or ] got {other:?} at {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.eat(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            out.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(out));
                }
                other => return Err(format!("expected , or }} got {other:?} at {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_pretty_output() {
        let v = JsonValue::Object(vec![
            ("version".into(), JsonValue::Number(1.0)),
            (
                "entries".into(),
                JsonValue::Array(vec![JsonValue::Object(vec![
                    ("rule".into(), JsonValue::String("panic-freedom".into())),
                    ("count".into(), JsonValue::Number(4.0)),
                ])]),
            ),
            (
                "note".into(),
                JsonValue::String("quote \" and \\ ok".into()),
            ),
        ]);
        let text = v.pretty();
        let back = parse(&text).expect("parses");
        assert_eq!(back, v);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#"{"k": "a\nbAλ"}"#).expect("parses");
        assert_eq!(v.get("k").and_then(|s| s.as_str()), Some("a\nbAλ"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("").is_err());
        assert!(parse("{\"a\":}").is_err());
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(JsonValue::Number(4.0).pretty(), "4\n");
    }
}
