//! `wx-analyze` — the workspace invariant linter.
//!
//! The repo's load-bearing guarantees (byte-deterministic reports under any
//! parallelism, the `derive_seed` stream discipline, allocation-free Γ/radio
//! hot paths, panic-free library crates) were enforced by convention and
//! after-the-fact proptests. This crate machine-checks them on every PR: a
//! dependency-free Rust [lexer] feeds a [rule engine](rules) that
//! walks every workspace `.rs` file under `crates/` and emits structured
//! diagnostics, with inline `// wx-allow(rule-id): reason` suppressions and
//! a committed [baseline ratchet](baseline) so pre-existing violations stand
//! while new ones fail CI.
//!
//! See `RULES.md` for the rule catalog and the motivating bug behind each
//! rule, and the `wx-analyze` binary for the CLI (`--check`, `--bless`,
//! `--format json`).

#![warn(missing_docs)]

pub mod baseline;
pub mod config;
pub mod diagnostics;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod scope;

pub use baseline::{Baseline, RatchetError};
pub use config::Config;
pub use diagnostics::Diagnostic;
pub use rules::analyze_source;

use std::path::{Path, PathBuf};

/// Analyzes every `.rs` file under `<root>/crates/`, in deterministic
/// (sorted-path) order. Returns the combined sorted diagnostics.
///
/// IO failures surface as `Err` with the offending path in the message.
pub fn analyze_workspace(root: &Path, cfg: &Config) -> Result<Vec<Diagnostic>, String> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    collect_rs_files(&crates_dir, &mut files)
        .map_err(|e| format!("walking {}: {e}", crates_dir.display()))?;
    files.sort();
    let mut diags = Vec::new();
    for path in files {
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let rel = rel_path(root, &path);
        diags.extend(analyze_source(&rel, &src, cfg));
    }
    diagnostics::sort(&mut diags);
    Ok(diags)
}

/// The workspace-relative forward-slash path of `path` under `root`.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_path_is_forward_slashed() {
        let root = Path::new("/ws");
        let p = Path::new("/ws/crates/graph/src/lib.rs");
        assert_eq!(rel_path(root, p), "crates/graph/src/lib.rs");
    }
}
