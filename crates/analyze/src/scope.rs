//! Lightweight structural scoping over the token stream.
//!
//! The rules need three pieces of context a flat token stream does not give
//! them directly:
//!
//! 1. **Test spans** — the line ranges of items annotated `#[cfg(test)]` /
//!    `#[test]` (most rules skip test code);
//! 2. **Function spans** — which `fn` body a line belongs to, so the
//!    hot-path allocation rule can exempt constructors and the seed rule can
//!    exempt the body of `derive_seed` itself;
//! 3. **`use` spans** — import lines, so naming `HashMap` in a `use` item is
//!    not flagged (only usage sites are).
//!
//! All three are computed by brace matching over the comment-free token
//! stream; the lexer has already removed strings and comments, so every
//! brace token is structural.

use crate::lexer::{Token, TokenKind};

/// The span of one `fn` item, with its name.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name (raw-ident prefix stripped: `r#new` → `new`).
    pub name: String,
    /// First line of the `fn` keyword.
    pub start: u32,
    /// Line of the closing brace of the body.
    pub end: u32,
}

/// Per-file structural scopes, queried by line.
#[derive(Debug, Default)]
pub struct FileScopes {
    test_spans: Vec<(u32, u32)>,
    fn_spans: Vec<FnSpan>,
    use_spans: Vec<(u32, u32)>,
}

impl FileScopes {
    /// `true` if `line` falls inside a `#[cfg(test)]`/`#[test]` item.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(s, e)| s <= line && line <= e)
    }

    /// The innermost `fn` whose body span contains `line`, if any.
    pub fn innermost_fn(&self, line: u32) -> Option<&FnSpan> {
        // Spans are recorded in source order; the innermost containing fn is
        // the one with the latest start.
        self.fn_spans
            .iter()
            .filter(|f| f.start <= line && line <= f.end)
            .max_by_key(|f| f.start)
    }

    /// `true` if any enclosing `fn` (not just the innermost) is named `name`.
    pub fn inside_fn_named(&self, line: u32, name: &str) -> bool {
        self.fn_spans
            .iter()
            .any(|f| f.start <= line && line <= f.end && f.name == name)
    }

    /// `true` if `line` is part of a `use …;` item.
    pub fn in_use(&self, line: u32) -> bool {
        self.use_spans.iter().any(|&(s, e)| s <= line && line <= e)
    }
}

/// Computes the scopes for one file from its full token stream.
pub fn compute(tokens: &[Token], src: &str) -> FileScopes {
    // Work on the comment-free stream; trivia never affects structure.
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.kind.is_trivia()).collect();
    let mut scopes = FileScopes::default();

    let mut i = 0usize;
    while i < code.len() {
        let t = code[i];
        match t.kind {
            TokenKind::Punct if t.text(src) == "#" => {
                if let Some((attr_is_test, after)) = scan_attribute(&code, src, i) {
                    if attr_is_test {
                        if let Some((start, end)) = item_body_span(&code, src, after) {
                            scopes.test_spans.push((t.line, end));
                            let _ = start;
                        }
                    }
                    i = after;
                    continue;
                }
            }
            TokenKind::Ident if t.text(src) == "fn" => {
                // Skip fn-pointer types: `fn(` has no name ident.
                if let Some(name_tok) = code.get(i + 1) {
                    if name_tok.kind == TokenKind::Ident {
                        let name = name_tok.text(src).trim_start_matches("r#").to_string();
                        if let Some((_, end)) = item_body_span(&code, src, i + 2) {
                            scopes.fn_spans.push(FnSpan {
                                name,
                                start: t.line,
                                end,
                            });
                        }
                    }
                }
            }
            TokenKind::Ident if t.text(src) == "use" => {
                // Statement-position `use` only; `use` cannot appear
                // elsewhere as an expression, so this is safe as-is.
                let start = t.line;
                let mut j = i + 1;
                while j < code.len() && code[j].text(src) != ";" {
                    j += 1;
                }
                let end = code.get(j).map(|t| t.line).unwrap_or(start);
                scopes.use_spans.push((start, end));
                i = j;
            }
            _ => {}
        }
        i += 1;
    }
    scopes
}

/// At `code[i] == "#"`: if this is an attribute, returns
/// `(mentions_test, index_after_closing_bracket)`. `mentions_test` is true
/// when the attribute's token list contains the ident `test` (`#[test]`,
/// `#[cfg(test)]`, `#[cfg(any(test, …))]`, …).
fn scan_attribute(code: &[&Token], src: &str, i: usize) -> Option<(bool, usize)> {
    let mut j = i + 1;
    // Inner attributes `#![…]`.
    if code.get(j).map(|t| t.text(src)) == Some("!") {
        j += 1;
    }
    if code.get(j).map(|t| t.text(src)) != Some("[") {
        return None;
    }
    let mut depth = 0usize;
    let mut mentions_test = false;
    while j < code.len() {
        let txt = code[j].text(src);
        match txt {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some((mentions_test, j + 1));
                }
            }
            // `#[cfg(not(test))]` is *non*-test code: skip the not(…) group.
            "not"
                if code[j].kind == TokenKind::Ident
                    && code.get(j + 1).map(|t| t.text(src)) == Some("(") =>
            {
                let mut paren = 0i32;
                j += 1;
                while j < code.len() {
                    match code[j].text(src) {
                        "(" => paren += 1,
                        ")" => {
                            paren -= 1;
                            if paren == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            "test" if code[j].kind == TokenKind::Ident => mentions_test = true,
            _ => {}
        }
        j += 1;
    }
    None
}

/// From `code[from]`, scans forward (skipping any further attributes) for the
/// item's `{ … }` body and returns its `(start_line, end_line)`. Returns
/// `None` for brace-less items (`#[cfg(test)] use …;`, trait method decls).
fn item_body_span(code: &[&Token], src: &str, from: usize) -> Option<(u32, u32)> {
    let mut j = from;
    // Skip stacked attributes.
    while code.get(j).map(|t| t.text(src)) == Some("#") {
        let (_, after) = scan_attribute(code, src, j)?;
        j = after;
    }
    // Find the opening brace of the body, giving up at a top-level `;`.
    // Bracket/paren nesting (generics with defaults, argument lists) cannot
    // contain statement semicolons that end the item, but arrays in const
    // generics could — track () and [] nesting for safety.
    let mut paren = 0i32;
    while j < code.len() {
        let txt = code[j].text(src);
        match txt {
            "(" | "[" => paren += 1,
            ")" | "]" => paren -= 1,
            ";" if paren == 0 => return None,
            "=" if paren == 0 => {
                // `#[cfg(test)] const X: … = …;` / `type T = …;`: the body
                // brace of an initializer is not an item body, but treating
                // the whole item as the span is correct for test-scoping.
                // Scan to the terminating `;` and span the item.
                let start_line = code.get(from).map(|t| t.line)?;
                let mut k = j;
                let mut depth = 0i32;
                while k < code.len() {
                    match code[k].text(src) {
                        "{" | "(" | "[" => depth += 1,
                        "}" | ")" | "]" => depth -= 1,
                        ";" if depth == 0 => return Some((start_line, code[k].line)),
                        _ => {}
                    }
                    k += 1;
                }
                return None;
            }
            "{" => {
                let start_line = code[j].line;
                let mut depth = 0i32;
                let mut k = j;
                while k < code.len() {
                    match code[k].text(src) {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                return Some((start_line, code[k].line));
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                // Unbalanced braces: span to EOF so scoping fails closed.
                return Some((start_line, code.last().map(|t| t.line)?));
            }
            _ => {}
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scopes_of(src: &str) -> FileScopes {
        compute(&lex(src), src)
    }

    #[test]
    fn cfg_test_mod_is_spanned() {
        let src = "fn lib_code() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let s = scopes_of(src);
        assert!(!s.in_test(1));
        assert!(s.in_test(3));
        assert!(s.in_test(4));
        assert!(s.in_test(5));
    }

    #[test]
    fn test_fn_attribute_is_spanned() {
        let src = "#[test]\nfn a_test() {\n    body();\n}\nfn not_test() {}\n";
        let s = scopes_of(src);
        assert!(s.in_test(2));
        assert!(s.in_test(3));
        assert!(!s.in_test(5));
    }

    #[test]
    fn braceless_cfg_test_item_spans_only_itself() {
        let src = "#[cfg(test)]\nuse std::collections::HashSet;\nfn real() {}\n";
        let s = scopes_of(src);
        // The `use` item has no braces; `real` must not be test-scoped.
        assert!(!s.in_test(3));
    }

    #[test]
    fn fn_spans_and_innermost() {
        let src = "fn outer() {\n    fn inner() {\n        x();\n    }\n    y();\n}\n";
        let s = scopes_of(src);
        assert_eq!(s.innermost_fn(3).map(|f| f.name.as_str()), Some("inner"));
        assert_eq!(s.innermost_fn(5).map(|f| f.name.as_str()), Some("outer"));
        assert!(s.inside_fn_named(3, "outer"));
    }

    #[test]
    fn trait_decl_without_body_is_skipped() {
        let src = "trait T {\n    fn decl(&self) -> usize;\n    fn with_default(&self) -> usize {\n        1\n    }\n}\n";
        let s = scopes_of(src);
        assert_eq!(
            s.innermost_fn(4).map(|f| f.name.as_str()),
            Some("with_default")
        );
    }

    #[test]
    fn use_spans_cover_grouped_imports() {
        let src = "use std::collections::{\n    HashMap,\n    HashSet,\n};\nfn f() { let _: HashMap<u32, u32>; }\n";
        let s = scopes_of(src);
        assert!(s.in_use(1));
        assert!(s.in_use(2));
        assert!(s.in_use(3));
        assert!(s.in_use(4));
        assert!(!s.in_use(5));
    }

    #[test]
    fn where_clause_does_not_confuse_fn_span() {
        let src = "fn generic<T>(x: T) -> usize\nwhere\n    T: Clone,\n{\n    1\n}\n";
        let s = scopes_of(src);
        assert_eq!(s.innermost_fn(5).map(|f| f.name.as_str()), Some("generic"));
    }
}
