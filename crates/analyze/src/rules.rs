//! The rule engine: token-stream matchers for the workspace invariants.
//!
//! Every rule walks the comment-free token stream of one file, consults the
//! structural scopes from [`crate::scope`], and emits [`Diagnostic`]s.
//! Inline suppressions (`// wx-allow(rule-id): reason`) are parsed from the
//! comment tokens and applied afterwards; malformed or unused suppressions
//! are themselves diagnostics, so the suppression surface can only shrink.

use crate::config::{classify, matches_any_prefix, Config, FileClass};
use crate::diagnostics::{self, Diagnostic};
use crate::lexer::{lex, Token, TokenKind};
use crate::scope::{self, FileScopes};

/// Rule: arithmetic on seed values outside `derive_seed`.
pub const SEED_DISCIPLINE: &str = "seed-discipline";
/// Rule: hash-container and wall-clock nondeterminism sources.
pub const DETERMINISM: &str = "determinism";
/// Rule: `unwrap`/`expect`/`panic!` family in library code.
pub const PANIC_FREEDOM: &str = "panic-freedom";
/// Rule: allocation in the configured hot-path modules.
pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";
/// Rule: debug/print output in library code.
pub const HYGIENE: &str = "hygiene";
/// Meta rule: malformed `wx-allow` comment.
pub const BAD_ALLOW: &str = "bad-allow";
/// Meta rule: a `wx-allow` that suppresses nothing.
pub const UNUSED_ALLOW: &str = "unused-allow";

/// Every rule id, in catalog order.
pub const ALL_RULES: &[&str] = &[
    SEED_DISCIPLINE,
    DETERMINISM,
    PANIC_FREEDOM,
    HOT_PATH_ALLOC,
    HYGIENE,
    BAD_ALLOW,
    UNUSED_ALLOW,
];

/// The rule ids a `wx-allow` may name (the meta rules are not suppressible).
const SUPPRESSIBLE: &[&str] = &[
    SEED_DISCIPLINE,
    DETERMINISM,
    PANIC_FREEDOM,
    HOT_PATH_ALLOC,
    HYGIENE,
];

/// Analyzes one file's source, returning its sorted diagnostics.
///
/// `rel_path` must be workspace-relative with forward slashes
/// (`crates/<name>/…`); paths outside `crates/` yield no diagnostics.
pub fn analyze_source(rel_path: &str, src: &str, cfg: &Config) -> Vec<Diagnostic> {
    let class = match classify(rel_path) {
        Some(c) => c,
        None => return Vec::new(),
    };
    if class.is_test_target {
        // Integration tests/benches are out of scope for every rule, and a
        // wx-allow there could only ever be unused — skip the file outright.
        return Vec::new();
    }
    let tokens = lex(src);
    let scopes = scope::compute(&tokens, src);
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.kind.is_trivia()).collect();

    let mut diags = Vec::new();
    let ctx = RuleCtx {
        path: rel_path,
        src,
        class: &class,
        scopes: &scopes,
        cfg,
        code: &code,
    };
    seed_discipline(&ctx, &mut diags);
    determinism(&ctx, &mut diags);
    panic_freedom(&ctx, &mut diags);
    hot_path_alloc(&ctx, &mut diags);
    hygiene(&ctx, &mut diags);

    let (mut suppressions, mut allow_diags) = parse_suppressions(rel_path, &tokens, src);
    diags.retain(|d| {
        !suppressions.iter_mut().any(|s| {
            let hit = s.target_line == d.line && s.rules.iter().any(|r| r == d.rule);
            if hit {
                s.used = true;
            }
            hit
        })
    });
    for s in &suppressions {
        if !s.used {
            allow_diags.push(Diagnostic {
                rule: UNUSED_ALLOW,
                file: rel_path.to_string(),
                line: s.line,
                col: s.col,
                message: format!(
                    "wx-allow({}) suppresses nothing on line {}; remove it",
                    s.rules.join(", "),
                    s.target_line
                ),
            });
        }
    }
    diags.extend(allow_diags);
    diagnostics::sort(&mut diags);
    diags
}

struct RuleCtx<'a> {
    path: &'a str,
    src: &'a str,
    class: &'a FileClass,
    scopes: &'a FileScopes,
    cfg: &'a Config,
    code: &'a [&'a Token],
}

impl RuleCtx<'_> {
    fn ident(&self, i: usize) -> Option<&str> {
        let t = self.code.get(i)?;
        (t.kind == TokenKind::Ident).then(|| t.text(self.src))
    }

    fn punct(&self, i: usize) -> Option<&str> {
        let t = self.code.get(i)?;
        (t.kind == TokenKind::Punct).then(|| t.text(self.src))
    }

    fn emit(&self, diags: &mut Vec<Diagnostic>, rule: &'static str, i: usize, message: String) {
        let t = self.code[i];
        diags.push(Diagnostic {
            rule,
            file: self.path.to_string(),
            line: t.line,
            col: t.col,
            message,
        });
    }
}

/// **seed-discipline** — seeds may only be combined via `derive_seed`.
///
/// Flags an identifier containing `seed` adjacent to an arithmetic operator
/// (`seed + i`, `seed * 131`, `base - seed`, `seed ^= x`, and the
/// `wrapping_*` method forms). PR 4's sampler bug — `1000 + fi*131 + t`
/// collapsing seed streams — is the motivating instance.
fn seed_discipline(ctx: &RuleCtx<'_>, diags: &mut Vec<Diagnostic>) {
    const OPS: &[&str] = &[
        "+", "-", "*", "/", "%", "^", "+=", "-=", "*=", "/=", "%=", "^=",
    ];
    const WRAPPING: &[&str] = &[
        "wrapping_add",
        "wrapping_sub",
        "wrapping_mul",
        "checked_add",
        "checked_mul",
        "saturating_add",
        "saturating_mul",
    ];
    for i in 0..ctx.code.len() {
        let name = match ctx.ident(i) {
            Some(n) if n.to_ascii_lowercase().contains("seed") => n,
            _ => continue,
        };
        let line = ctx.code[i].line;
        if ctx.scopes.in_test(line) || ctx.scopes.inside_fn_named(line, "derive_seed") {
            continue;
        }
        // `derive_seed(`, `seed_from_u64(` … are calls, not arithmetic.
        let next = ctx.punct(i + 1);
        let next_is_op = next.map(|p| OPS.contains(&p)).unwrap_or(false);
        let prev = ctx.punct(i.wrapping_sub(1)).filter(|_| i > 0);
        let prev_is_op = match prev {
            Some(p) if OPS.contains(&p) => {
                if p == "-" || p == "*" {
                    // Binary only: `a - seed` yes, `-seed`/`*seed` (negation /
                    // deref / closure pattern) only when the token before the
                    // operator closes an operand.
                    i >= 2 && closes_operand(ctx, i - 2)
                } else {
                    true
                }
            }
            _ => false,
        };
        let wrapping_call = ctx.punct(i + 1) == Some(".")
            && ctx
                .ident(i + 2)
                .map(|m| WRAPPING.contains(&m))
                .unwrap_or(false);
        // Arithmetic on the *result* of a seed-returning call:
        // `base_seed(x) - 7`, `derive_seed(a, b) ^ c`. Look past the
        // call's balanced argument list for a trailing operator.
        let call_result_op = if next == Some("(") {
            match matching_close(ctx, i + 1) {
                Some(j) => ctx.punct(j + 1).filter(|p| OPS.contains(p)),
                None => None,
            }
        } else {
            None
        };
        if next_is_op || prev_is_op || wrapping_call || call_result_op.is_some() {
            let how = if wrapping_call {
                format!("`{name}.{}`", ctx.ident(i + 2).unwrap_or(""))
            } else if next_is_op {
                format!("`{name} {}`", next.unwrap_or(""))
            } else if let Some(op) = call_result_op {
                format!("`{name}(…) {op}`")
            } else {
                format!("`{} {name}`", prev.unwrap_or(""))
            };
            ctx.emit(
                diags,
                SEED_DISCIPLINE,
                i,
                format!(
                    "arithmetic on seed value {how}: derive child seeds with \
                     `derive_seed(parent, stream)` instead (ad-hoc offsets collide, \
                     cf. the PR 4 sampler bug)"
                ),
            );
        }
    }
}

/// Index of the `)` matching the `(` at code index `open` (`None` when
/// unbalanced to end of file).
fn matching_close(ctx: &RuleCtx<'_>, open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in ctx.code.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            match t.text(ctx.src) {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(k);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// `true` when the token at `i` can end an operand (so a following `-`/`*`
/// is a binary operator, not a prefix).
fn closes_operand(ctx: &RuleCtx<'_>, i: usize) -> bool {
    match ctx.code.get(i) {
        Some(t) => match t.kind {
            TokenKind::Ident | TokenKind::NumLit => true,
            TokenKind::Punct => matches!(t.text(ctx.src), ")" | "]"),
            _ => false,
        },
        None => false,
    }
}

/// **determinism** — no hash-ordered containers or ambient clocks/RNG where
/// bytes can reach a report.
fn determinism(ctx: &RuleCtx<'_>, diags: &mut Vec<Diagnostic>) {
    let hash_scoped = ctx
        .cfg
        .hash_container_crates
        .iter()
        .any(|c| c == &ctx.class.crate_name);
    let timing_allowed = matches_any_prefix(ctx.path, &ctx.cfg.timing_allowed);
    let mut last_hash_line = 0u32;
    for i in 0..ctx.code.len() {
        let name = match ctx.ident(i) {
            Some(n) => n,
            None => continue,
        };
        let line = ctx.code[i].line;
        if ctx.scopes.in_test(line) {
            continue;
        }
        match name {
            "HashMap" | "HashSet" if hash_scoped => {
                if ctx.scopes.in_use(line) || line == last_hash_line {
                    continue;
                }
                last_hash_line = line;
                ctx.emit(
                    diags,
                    DETERMINISM,
                    i,
                    format!(
                        "`{name}` iteration order is nondeterministic and can leak into \
                         reports or RNG draw order: use BTreeMap/BTreeSet (or sort before \
                         iterating), or wx-allow with a proof the order never escapes"
                    ),
                );
            }
            "Instant"
                if ctx.punct(i + 1) == Some("::")
                    && ctx.ident(i + 2) == Some("now")
                    && !timing_allowed =>
            {
                ctx.emit(
                    diags,
                    DETERMINISM,
                    i,
                    "`Instant::now` outside `wx_trace::clock` breaks report \
                     reproducibility; use `wx_trace::Clock` or a `wx_trace::span` instead"
                        .to_string(),
                );
            }
            "SystemTime" if !timing_allowed => {
                ctx.emit(
                    diags,
                    DETERMINISM,
                    i,
                    "`SystemTime` outside `wx_trace::clock` breaks report reproducibility"
                        .to_string(),
                );
            }
            "thread_rng" => {
                ctx.emit(
                    diags,
                    DETERMINISM,
                    i,
                    "`thread_rng` is ambient nondeterminism: every RNG must come from \
                     `rng_from_seed`/`derive_seed` so trials are replayable"
                        .to_string(),
                );
            }
            _ => {}
        }
    }
}

/// **panic-freedom** — library code propagates errors instead of panicking.
fn panic_freedom(ctx: &RuleCtx<'_>, diags: &mut Vec<Diagnostic>) {
    if ctx.class.is_bin {
        return; // binaries may exit loudly; the rule targets library paths
    }
    for i in 0..ctx.code.len() {
        let name = match ctx.ident(i) {
            Some(n) => n,
            None => continue,
        };
        let line = ctx.code[i].line;
        if ctx.scopes.in_test(line) {
            continue;
        }
        let method_call = |m: &str| {
            name == m
                && ctx.punct(i.wrapping_sub(1)).filter(|_| i > 0) == Some(".")
                && ctx.punct(i + 1) == Some("(")
        };
        let macro_call = |m: &str| name == m && ctx.punct(i + 1) == Some("!");
        let flagged = if method_call("unwrap") {
            Some("`.unwrap()` panics on the error path")
        } else if method_call("expect") {
            Some("`.expect(…)` panics on the error path")
        } else if macro_call("panic") {
            Some("`panic!` aborts the whole run")
        } else if macro_call("unreachable") {
            Some("`unreachable!` is a latent panic if the invariant drifts")
        } else if macro_call("todo") || macro_call("unimplemented") {
            Some("unfinished code path panics at runtime")
        } else {
            None
        };
        if let Some(why) = flagged {
            ctx.emit(
                diags,
                PANIC_FREEDOM,
                i,
                format!("{why}: return the crate error type instead"),
            );
        }
    }
}

/// **hot-path-alloc** — the configured allocation-free modules stay that way
/// outside constructors.
fn hot_path_alloc(ctx: &RuleCtx<'_>, diags: &mut Vec<Diagnostic>) {
    if !matches_any_prefix(ctx.path, &ctx.cfg.hot_path_modules) {
        return;
    }
    let is_ctor = |line: u32| match ctx.scopes.innermost_fn(line) {
        Some(f) => {
            ctx.cfg.constructor_names.iter().any(|n| n == &f.name)
                || f.name.starts_with("new_")
                || f.name.starts_with("with_")
                || f.name.starts_with("from_")
        }
        None => true, // item position (consts, statics): not a hot path
    };
    for i in 0..ctx.code.len() {
        let name = match ctx.ident(i) {
            Some(n) => n,
            None => continue,
        };
        let line = ctx.code[i].line;
        if ctx.scopes.in_test(line) || is_ctor(line) {
            continue;
        }
        let method_call = |m: &str| {
            name == m
                && ctx.punct(i.wrapping_sub(1)).filter(|_| i > 0) == Some(".")
                && ctx.punct(i + 1) == Some("(")
        };
        let assoc_call = |ty: &str, m: &str| {
            name == ty && ctx.punct(i + 1) == Some("::") && ctx.ident(i + 2) == Some(m)
        };
        let flagged = if assoc_call("Vec", "new") || assoc_call("Vec", "with_capacity") {
            Some("`Vec` allocation".to_string())
        } else if assoc_call("Box", "new") {
            Some("`Box::new` allocation".to_string())
        } else if assoc_call("String", "from") {
            Some("`String` allocation".to_string())
        } else if name == "vec" && ctx.punct(i + 1) == Some("!") {
            Some("`vec!` allocation".to_string())
        } else if name == "format" && ctx.punct(i + 1) == Some("!") {
            Some("`format!` allocation".to_string())
        } else if method_call("to_vec") || method_call("to_owned") || method_call("collect") {
            Some(format!("`.{name}()` allocation"))
        } else if method_call("clone") {
            Some("`.clone()` allocation".to_string())
        } else {
            None
        };
        if let Some(what) = flagged {
            ctx.emit(
                diags,
                HOT_PATH_ALLOC,
                i,
                format!(
                    "{what} in allocation-free hot-path module (outside a constructor): \
                     reuse the scratch/workspace buffers instead"
                ),
            );
        }
    }
}

/// **hygiene** — no stray debug output from library code.
fn hygiene(ctx: &RuleCtx<'_>, diags: &mut Vec<Diagnostic>) {
    if ctx.class.is_bin || matches_any_prefix(ctx.path, &ctx.cfg.hygiene_allowed) {
        return;
    }
    for i in 0..ctx.code.len() {
        let name = match ctx.ident(i) {
            Some(n) => n,
            None => continue,
        };
        if !matches!(name, "dbg" | "println" | "eprintln" | "print" | "eprint") {
            continue;
        }
        if ctx.punct(i + 1) != Some("!") {
            continue;
        }
        let line = ctx.code[i].line;
        if ctx.scopes.in_test(line) {
            continue;
        }
        ctx.emit(
            diags,
            HYGIENE,
            i,
            format!(
                "`{name}!` in library code: emit data through reports/errors, or move \
                 presentation into the CLI layer"
            ),
        );
    }
}

// ---------------------------------------------------------------------------
// wx-allow suppressions
// ---------------------------------------------------------------------------

struct Suppression {
    rules: Vec<String>,
    /// Line the suppression applies to (its own line, or the next code line
    /// for a standalone comment).
    target_line: u32,
    /// Where the comment itself sits (for unused-allow diagnostics).
    line: u32,
    col: u32,
    used: bool,
}

/// Parses every `wx-allow` comment, returning the valid suppressions and the
/// diagnostics for malformed ones.
fn parse_suppressions(
    rel_path: &str,
    tokens: &[Token],
    src: &str,
) -> (Vec<Suppression>, Vec<Diagnostic>) {
    let mut sups = Vec::new();
    let mut diags = Vec::new();
    for (idx, t) in tokens.iter().enumerate() {
        if !t.kind.is_trivia() {
            continue;
        }
        let body = t
            .text(src)
            .trim_start_matches("//")
            .trim_start_matches("/*")
            .trim_end_matches("*/")
            .trim();
        let Some(rest) = body.strip_prefix("wx-allow") else {
            continue;
        };
        // Prose that merely *mentions* wx-allow is not a directive: the
        // marker is only live when a `(` follows immediately.
        let Some(rest) = rest.strip_prefix('(') else {
            continue;
        };
        let bad = |msg: String| Diagnostic {
            rule: BAD_ALLOW,
            file: rel_path.to_string(),
            line: t.line,
            col: t.col,
            message: msg,
        };
        let Some((ids, rest)) = rest.split_once(')') else {
            diags.push(bad("malformed wx-allow: missing `)`".into()));
            continue;
        };
        let rules: Vec<String> = ids
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            diags.push(bad("wx-allow names no rule id".into()));
            continue;
        }
        let unknown: Vec<&String> = rules
            .iter()
            .filter(|r| !SUPPRESSIBLE.contains(&r.as_str()))
            .collect();
        if let Some(u) = unknown.first() {
            diags.push(bad(format!(
                "wx-allow names unknown or unsuppressible rule `{u}` \
                 (see `wx-analyze --list-rules`)"
            )));
            continue;
        }
        let reason = rest.trim_start().strip_prefix(':').map(str::trim);
        match reason {
            Some(r) if !r.is_empty() => {}
            _ => {
                diags.push(bad(
                    "wx-allow requires a reason: `wx-allow(rule-id): why this is sound`".into(),
                ));
                continue;
            }
        }
        // Standalone comment (nothing but trivia before it on its line)
        // targets the next code line; a trailing comment targets its own.
        let standalone = !tokens[..idx]
            .iter()
            .rev()
            .take_while(|p| p.line == t.line)
            .any(|p| !p.kind.is_trivia());
        let target_line = if standalone {
            tokens[idx + 1..]
                .iter()
                .find(|n| !n.kind.is_trivia())
                .map(|n| n.line)
                .unwrap_or(t.line)
        } else {
            t.line
        };
        sups.push(Suppression {
            rules,
            target_line,
            line: t.line,
            col: t.col,
            used: false,
        });
    }
    (sups, diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        analyze_source(path, src, &Config::workspace())
    }

    #[test]
    fn seed_arithmetic_is_flagged_and_derive_seed_is_exempt() {
        let src = "pub fn derive_seed(parent: u64, stream: u64) -> u64 {\n\
                   \x20   parent.wrapping_add(stream)\n\
                   }\n\
                   pub fn bad(seed: u64, i: u64) -> u64 {\n\
                   \x20   seed + i\n\
                   }\n";
        let d = run("crates/graph/src/random.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, SEED_DISCIPLINE);
        assert_eq!(d[0].line, 5);
    }

    #[test]
    fn seed_in_test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(seed: u64) -> u64 { seed + 1 }\n}\n";
        assert!(run("crates/graph/src/random.rs", src).is_empty());
    }

    #[test]
    fn trailing_wx_allow_suppresses_and_must_be_used() {
        let src = "fn f(seed: u64) -> u64 {\n\
                   \x20   seed + 1 // wx-allow(seed-discipline): proven disjoint streams\n\
                   }\n";
        assert!(run("crates/graph/src/lib.rs", src).is_empty());
    }

    #[test]
    fn standalone_wx_allow_targets_next_line() {
        let src = "fn f(seed: u64) -> u64 {\n\
                   \x20   // wx-allow(seed-discipline): proven disjoint streams\n\
                   \x20   seed + 1\n\
                   }\n";
        assert!(run("crates/graph/src/lib.rs", src).is_empty());
    }

    #[test]
    fn wx_allow_without_reason_is_bad_allow() {
        let src = "fn f(seed: u64) -> u64 {\n    seed + 1 // wx-allow(seed-discipline)\n}\n";
        let d = run("crates/graph/src/lib.rs", src);
        assert!(d.iter().any(|d| d.rule == BAD_ALLOW), "{d:?}");
        // the violation itself still stands
        assert!(d.iter().any(|d| d.rule == SEED_DISCIPLINE));
    }

    #[test]
    fn unused_wx_allow_is_flagged() {
        let src = "fn f() {} // wx-allow(hygiene): nothing here\n";
        let d = run("crates/graph/src/lib.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, UNUSED_ALLOW);
    }

    #[test]
    fn hash_container_flagged_outside_use() {
        let src = "use std::collections::HashMap;\n\
                   fn f() -> Vec<u32> {\n\
                   \x20   let m: HashMap<u32, u32> = HashMap::default();\n\
                   \x20   m.keys().copied().collect()\n\
                   }\n";
        let d = run("crates/expansion/src/sampling.rs", src);
        // one per line (the two mentions on line 3 dedupe)
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, DETERMINISM);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn wall_clock_allowed_only_in_the_sanctioned_clock() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert!(run("crates/trace/src/clock.rs", src).is_empty());
        // the bench harness lost its historical carve-out: it reads time
        // through `wx_trace::Clock` like everyone else
        let d = run("crates/bench/src/throughput.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, DETERMINISM);
        let d = run("crates/radio/src/simulator.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, DETERMINISM);
    }

    #[test]
    fn panic_freedom_spares_bins_and_tests() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(run("crates/lab/src/runner.rs", src).len(), 1);
        assert!(run("crates/lab/src/bin/wx.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod t {\n    fn f(x: Option<u32>) -> u32 { x.unwrap() }\n}\n";
        assert!(run("crates/lab/src/runner.rs", test_src).is_empty());
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";
        assert!(run("crates/lab/src/runner.rs", src).is_empty());
    }

    #[test]
    fn hot_path_allows_ctors_only() {
        let src = "impl S {\n\
                   \x20   pub fn new(n: usize) -> S {\n\
                   \x20       S { v: vec![0; n] }\n\
                   \x20   }\n\
                   \x20   pub fn step(&mut self) -> Vec<u32> {\n\
                   \x20       self.v.to_vec()\n\
                   \x20   }\n\
                   }\n";
        let d = run("crates/graph/src/scratch.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, HOT_PATH_ALLOC);
        assert_eq!(d[0].line, 6);
        // same file outside the hot-path list: clean
        assert!(run("crates/graph/src/csr.rs", src).is_empty());
    }

    #[test]
    fn hygiene_flags_prints_in_library_code() {
        let src = "fn f() { println!(\"x\"); dbg!(3); }\n";
        let d = run("crates/radio/src/simulator.rs", src);
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|d| d.rule == HYGIENE));
        // the CLI layer is configured out
        assert!(run("crates/lab/src/cli.rs", src).is_empty());
        assert!(run("crates/lab/src/bin/wx.rs", src).is_empty());
    }

    #[test]
    fn test_targets_are_fully_exempt() {
        let src = "fn f(x: Option<u32>, seed: u64) { x.unwrap(); let _ = seed + 1; println!(); }\n";
        assert!(run("crates/graph/tests/properties.rs", src).is_empty());
    }
}
