//! Structured diagnostics and their human / JSON renderings.

use crate::json::JsonValue;

/// One violation: where it is, which rule fired, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule identifier (see `RULES.md`).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation, including the offending token.
    pub message: String,
}

impl Diagnostic {
    /// The canonical single-line rendering: `file:line:col: [rule] message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }

    /// The JSON object rendering used by `--format json`.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("rule".to_string(), JsonValue::String(self.rule.to_string())),
            ("file".to_string(), JsonValue::String(self.file.clone())),
            ("line".to_string(), JsonValue::Number(f64::from(self.line))),
            ("col".to_string(), JsonValue::Number(f64::from(self.col))),
            (
                "message".to_string(),
                JsonValue::String(self.message.clone()),
            ),
        ])
    }
}

/// Sorts diagnostics into the canonical deterministic order:
/// (file, line, col, rule).
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_clickable() {
        let d = Diagnostic {
            rule: "hygiene",
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 9,
            message: "dbg! in library code".into(),
        };
        assert_eq!(
            d.render(),
            "crates/x/src/lib.rs:3:9: [hygiene] dbg! in library code"
        );
    }

    #[test]
    fn sort_orders_by_position() {
        let mk = |file: &str, line, col| Diagnostic {
            rule: "hygiene",
            file: file.into(),
            line,
            col,
            message: String::new(),
        };
        let mut v = vec![mk("b.rs", 1, 1), mk("a.rs", 9, 1), mk("a.rs", 2, 5)];
        sort(&mut v);
        assert_eq!(
            v.iter()
                .map(|d| (d.file.clone(), d.line))
                .collect::<Vec<_>>(),
            vec![("a.rs".into(), 2), ("a.rs".into(), 9), ("b.rs".into(), 1)]
        );
    }
}
