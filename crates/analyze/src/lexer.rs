//! A lightweight, dependency-free Rust lexer.
//!
//! The rule engine only needs a *token stream with positions*, not a parse
//! tree, so this lexer is deliberately small: it recognises identifiers
//! (including raw `r#ident` forms and keywords), lifetimes vs. character
//! literals, every string flavour (`"…"`, `r"…"`, `r#"…"#`, `b"…"`,
//! `br#"…"#`), byte/char literals, numbers, line and (nested) block
//! comments, and maximal-munch punctuation. It is **total**: any input
//! produces a token stream (malformed bytes become [`TokenKind::Unknown`]),
//! it never panics, and every non-whitespace byte of the input is covered by
//! exactly one token — a property the proptests in
//! `tests/lexer_proptest.rs` pin down.

/// The classification of a single lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers like `r#fn`).
    Ident,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// A character literal: `'x'`, `'\n'`, `'\u{1F600}'`.
    CharLit,
    /// A byte literal: `b'x'`.
    ByteCharLit,
    /// A plain string literal: `"…"` (escapes handled, may span lines).
    StrLit,
    /// A raw string literal: `r"…"`, `r#"…"#`, …
    RawStrLit,
    /// A byte string literal: `b"…"`, `br#"…"#`, …
    ByteStrLit,
    /// A numeric literal (integer or float, any base, with suffix).
    NumLit,
    /// A `// …` comment (text retained for `wx-allow` parsing).
    LineComment,
    /// A `/* … */` comment, nesting handled.
    BlockComment,
    /// Punctuation, maximal munch (`::`, `->`, `+=`, …).
    Punct,
    /// A byte the lexer does not recognise (kept so coverage is total).
    Unknown,
}

impl TokenKind {
    /// `true` for comments — tokens the rule matchers skip over.
    pub fn is_trivia(self) -> bool {
        matches!(self, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// One token: kind plus byte span and 1-based line/column of its start.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Byte offset of the first byte (inclusive).
    pub start: usize,
    /// Byte offset one past the last byte (exclusive).
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based column (in characters) of the first byte.
    pub col: u32,
}

impl Token {
    /// The token's text, sliced out of the source it was lexed from.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

/// Multi-character punctuation, longest first so maximal munch is a simple
/// prefix scan.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "...", "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

struct Cursor<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'s> Cursor<'s> {
    fn new(src: &'s str) -> Self {
        Cursor {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte, maintaining line/col. Multi-byte UTF-8
    /// continuation bytes do not bump the column.
    fn bump(&mut self) {
        if let Some(&b) = self.bytes.get(self.pos) {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else if b & 0xC0 != 0x80 {
                self.col += 1;
            }
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into a complete token stream (comments included).
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while !cur.at_end() {
        let b = cur.peek(0).unwrap_or(0);
        if b.is_ascii_whitespace() {
            cur.bump();
            continue;
        }
        let start = cur.pos;
        let line = cur.line;
        let col = cur.col;
        let kind = lex_one(&mut cur);
        debug_assert!(cur.pos > start, "lexer must always make progress");
        out.push(Token {
            kind,
            start,
            end: cur.pos,
            line,
            col,
        });
    }
    out
}

/// Lexes exactly one token starting at the cursor (not whitespace, not EOF).
fn lex_one(cur: &mut Cursor<'_>) -> TokenKind {
    let b = match cur.peek(0) {
        Some(b) => b,
        None => return TokenKind::Unknown,
    };
    // Comments.
    if b == b'/' {
        match cur.peek(1) {
            Some(b'/') => return lex_line_comment(cur),
            Some(b'*') => return lex_block_comment(cur),
            _ => {}
        }
    }
    // String-ish prefixes that look like identifiers: r" r#" br" b" b' r#raw_ident
    if b == b'r' || b == b'b' {
        if let Some(kind) = try_lex_prefixed_literal(cur) {
            return kind;
        }
    }
    if is_ident_start(b) {
        return lex_ident(cur);
    }
    if b == b'\'' {
        return lex_lifetime_or_char(cur);
    }
    if b == b'"' {
        lex_string_body(cur);
        return TokenKind::StrLit;
    }
    if b.is_ascii_digit() {
        return lex_number(cur);
    }
    // Maximal-munch punctuation.
    let rest = &cur.src[cur.pos..];
    for p in MULTI_PUNCT {
        if rest.starts_with(p) {
            cur.bump_n(p.len());
            return TokenKind::Punct;
        }
    }
    if b.is_ascii_punctuation() {
        cur.bump();
        return TokenKind::Punct;
    }
    cur.bump();
    TokenKind::Unknown
}

fn lex_line_comment(cur: &mut Cursor<'_>) -> TokenKind {
    while let Some(b) = cur.peek(0) {
        if b == b'\n' {
            break;
        }
        cur.bump();
    }
    TokenKind::LineComment
}

fn lex_block_comment(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump_n(2); // /*
    let mut depth = 1usize;
    while depth > 0 && !cur.at_end() {
        match (cur.peek(0), cur.peek(1)) {
            (Some(b'/'), Some(b'*')) => {
                depth += 1;
                cur.bump_n(2);
            }
            (Some(b'*'), Some(b'/')) => {
                depth -= 1;
                cur.bump_n(2);
            }
            _ => cur.bump(),
        }
    }
    // Unterminated comments swallow the rest of the file; still a comment.
    TokenKind::BlockComment
}

/// Handles `r`/`b` prefixes: raw strings, byte strings, byte chars, and raw
/// identifiers. Returns `None` when the `r`/`b` is just an ordinary ident
/// start.
fn try_lex_prefixed_literal(cur: &mut Cursor<'_>) -> Option<TokenKind> {
    let b0 = cur.peek(0)?;
    match (b0, cur.peek(1)) {
        // b'x'
        (b'b', Some(b'\'')) => {
            cur.bump(); // b
            lex_char_body(cur);
            Some(TokenKind::ByteCharLit)
        }
        // b"…"
        (b'b', Some(b'"')) => {
            cur.bump();
            lex_string_body(cur);
            Some(TokenKind::ByteStrLit)
        }
        // br"…" / br#"…"#
        (b'b', Some(b'r')) => {
            let hashes = count_hashes(cur, 2);
            if cur.peek(2 + hashes) == Some(b'"') {
                cur.bump_n(2);
                lex_raw_string_body(cur, hashes);
                Some(TokenKind::ByteStrLit)
            } else {
                None
            }
        }
        // r"…" / r#"…"# / r#ident
        (b'r', Some(b'"')) => {
            cur.bump();
            lex_raw_string_body(cur, 0);
            Some(TokenKind::RawStrLit)
        }
        (b'r', Some(b'#')) => {
            let hashes = count_hashes(cur, 1);
            if cur.peek(1 + hashes) == Some(b'"') {
                cur.bump();
                lex_raw_string_body(cur, hashes);
                Some(TokenKind::RawStrLit)
            } else if hashes == 1 && cur.peek(2).map(is_ident_start).unwrap_or(false) {
                // raw identifier r#fn
                cur.bump_n(2);
                lex_ident(cur);
                Some(TokenKind::Ident)
            } else {
                None
            }
        }
        _ => None,
    }
}

fn count_hashes(cur: &Cursor<'_>, from: usize) -> usize {
    let mut n = 0;
    while cur.peek(from + n) == Some(b'#') {
        n += 1;
    }
    n
}

fn lex_ident(cur: &mut Cursor<'_>) -> TokenKind {
    while cur.peek(0).map(is_ident_continue).unwrap_or(false) {
        cur.bump();
    }
    TokenKind::Ident
}

/// After a `'`: a lifetime (`'a`, `'static`) unless the identifier is a
/// single char followed by a closing quote (`'a'` is a char literal).
fn lex_lifetime_or_char(cur: &mut Cursor<'_>) -> TokenKind {
    if cur.peek(1).map(is_ident_start).unwrap_or(false) {
        // Scan the identifier run after the quote.
        let mut n = 1;
        while cur.peek(n).map(is_ident_continue).unwrap_or(false) {
            n += 1;
        }
        if cur.peek(n) != Some(b'\'') {
            cur.bump(); // '
            cur.bump_n(n - 1);
            return TokenKind::Lifetime;
        }
    }
    lex_char_body(cur);
    TokenKind::CharLit
}

/// Consumes a `'…'` literal starting at the opening quote; stops at the
/// closing quote, a newline, or EOF (unterminated literals stay total).
fn lex_char_body(cur: &mut Cursor<'_>) {
    cur.bump(); // '
    if cur.peek(0) == Some(b'\\') {
        cur.bump();
        if !cur.at_end() {
            cur.bump(); // the escaped byte (enough for \' \\ \n \u{…} prefixes)
        }
        // \u{…}: consume through the closing brace
        if cur.bytes.get(cur.pos.wrapping_sub(1)) == Some(&b'u') && cur.peek(0) == Some(b'{') {
            while let Some(b) = cur.peek(0) {
                cur.bump();
                if b == b'}' {
                    break;
                }
            }
        }
    } else if cur.peek(0).is_some() && cur.peek(0) != Some(b'\'') {
        cur.bump(); // the literal char (may be multi-byte; continuation below)
        while cur.peek(0).map(|b| b & 0xC0 == 0x80).unwrap_or(false) {
            cur.bump();
        }
    }
    if cur.peek(0) == Some(b'\'') {
        cur.bump();
    }
}

/// Consumes a `"…"` literal starting at the opening quote, handling `\`
/// escapes; runs to EOF if unterminated.
fn lex_string_body(cur: &mut Cursor<'_>) {
    cur.bump(); // "
    while let Some(b) = cur.peek(0) {
        if b == b'\\' {
            cur.bump();
            if !cur.at_end() {
                cur.bump();
            }
            continue;
        }
        cur.bump();
        if b == b'"' {
            break;
        }
    }
}

/// Consumes `#…#"…"#…#` with `hashes` leading hashes; the cursor sits on the
/// first `#` (or the `"` when `hashes == 0`).
fn lex_raw_string_body(cur: &mut Cursor<'_>, hashes: usize) {
    cur.bump_n(hashes); // leading hashes
    cur.bump(); // opening quote
    while let Some(b) = cur.peek(0) {
        if b == b'"' {
            let mut ok = true;
            for i in 0..hashes {
                if cur.peek(1 + i) != Some(b'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                cur.bump_n(1 + hashes);
                return;
            }
        }
        cur.bump();
    }
}

fn lex_number(cur: &mut Cursor<'_>) -> TokenKind {
    let radix_prefixed =
        cur.peek(0) == Some(b'0') && matches!(cur.peek(1), Some(b'x' | b'o' | b'b' | b'X'));
    // Integer part (covers 0x/0o/0b digits and `_` separators).
    while cur
        .peek(0)
        .map(|b| b.is_ascii_alphanumeric() || b == b'_')
        .unwrap_or(false)
    {
        cur.bump();
    }
    // Fractional part only when `.` is followed by a digit (so `0..n` and
    // `1.max(2)` lex the dot separately).
    if cur.peek(0) == Some(b'.') && cur.peek(1).map(|b| b.is_ascii_digit()).unwrap_or(false) {
        cur.bump();
        while cur
            .peek(0)
            .map(|b| b.is_ascii_alphanumeric() || b == b'_')
            .unwrap_or(false)
        {
            cur.bump();
        }
    }
    // Exponent sign: `1e-3` — the `e` was consumed above, pick up `-3`/`+3`.
    // Radix-prefixed literals (`0xE`) never have signed exponents.
    if !radix_prefixed
        && matches!(cur.bytes.get(cur.pos.wrapping_sub(1)), Some(b'e' | b'E'))
        && matches!(cur.peek(0), Some(b'+' | b'-'))
        && cur.peek(1).map(|b| b.is_ascii_digit()).unwrap_or(false)
    {
        cur.bump();
        while cur.peek(0).map(|b| b.is_ascii_digit()).unwrap_or(false) {
            cur.bump();
        }
    }
    TokenKind::NumLit
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_keywords_numbers() {
        let ks = kinds("fn foo_1(x: u64) -> f64 { 1.5e-3 + 0xFF_u32 }");
        let idents: Vec<_> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(idents, ["fn", "foo_1", "x", "u64", "f64"]);
        let nums: Vec<_> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::NumLit)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(nums, ["1.5e-3", "0xFF_u32"]);
    }

    #[test]
    fn arrow_is_not_minus() {
        let ks = kinds("a -> b - c");
        let puncts: Vec<_> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(puncts, ["->", "-"]);
    }

    #[test]
    fn lifetime_vs_char() {
        let ks = kinds("&'a str; 'x'; '\\n'; 'static");
        assert!(ks.contains(&(TokenKind::Lifetime, "'a".into())));
        assert!(ks.contains(&(TokenKind::CharLit, "'x'".into())));
        assert!(ks.contains(&(TokenKind::CharLit, "'\\n'".into())));
        assert!(ks.contains(&(TokenKind::Lifetime, "'static".into())));
    }

    #[test]
    fn string_flavours() {
        let src = r####"let a = "pl\"ain"; let b = r"raw"; let c = r#"ra"w"#; let d = b"bytes"; let e = br##"x"##; let f = b'q';"####;
        let ks = kinds(src);
        assert!(ks.contains(&(TokenKind::StrLit, "\"pl\\\"ain\"".into())));
        assert!(ks.contains(&(TokenKind::RawStrLit, "r\"raw\"".into())));
        assert!(ks.contains(&(TokenKind::RawStrLit, "r#\"ra\"w\"#".into())));
        assert!(ks.contains(&(TokenKind::ByteStrLit, "b\"bytes\"".into())));
        assert!(ks.contains(&(TokenKind::ByteStrLit, "br##\"x\"##".into())));
        assert!(ks.contains(&(TokenKind::ByteCharLit, "b'q'".into())));
    }

    #[test]
    fn raw_identifier() {
        let ks = kinds("let r#fn = 3;");
        assert!(ks.contains(&(TokenKind::Ident, "r#fn".into())));
    }

    #[test]
    fn comments_nested_and_line() {
        let src = "code /* outer /* inner */ still */ more // tail\nnext";
        let ks = kinds(src);
        assert!(ks.contains(&(
            TokenKind::BlockComment,
            "/* outer /* inner */ still */".into()
        )));
        assert!(ks.contains(&(TokenKind::LineComment, "// tail".into())));
        assert!(ks.contains(&(TokenKind::Ident, "next".into())));
    }

    #[test]
    fn tokens_inside_strings_are_not_code() {
        let ks = kinds(r#"let s = "seed + 1 // not a comment unwrap()";"#);
        assert_eq!(
            ks.iter().filter(|(k, _)| *k == TokenKind::StrLit).count(),
            1
        );
        assert!(!ks
            .iter()
            .any(|(k, s)| *k == TokenKind::Ident && s == "unwrap"));
        assert!(!ks.iter().any(|(k, _)| *k == TokenKind::LineComment));
    }

    #[test]
    fn positions_are_one_based_and_accurate() {
        let src = "ab\n  cd";
        let ts = lex(src);
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
    }

    #[test]
    fn totality_on_garbage() {
        // Unterminated constructs and stray bytes must still lex.
        for src in ["\"unterminated", "/* open", "'", "r#\"open", "€ λ", "b'"] {
            let ts = lex(src);
            assert!(!ts.is_empty(), "no tokens for {src:?}");
            assert_eq!(ts.last().map(|t| t.end), Some(src.len()));
        }
    }
}
