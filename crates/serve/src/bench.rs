//! `wx bench --serve` — measures what the artifact cache buys.
//!
//! Three measurements on one spokesman scenario (a production-scale
//! random regular graph; `--smoke` shrinks it to CI size):
//!
//! 1. **cold** — first request on a fresh service: graph build + solver.
//! 2. **warm** — the identical request again: cached graph + cached
//!    solution, so the request pays view extraction and rehydration.
//! 3. **burst** — N identical requests submitted back-to-back: the
//!    in-flight ones coalesce, so N responses cost ~1 execution.
//!
//! The run also replays the spec through the batch [`Runner`] and
//! records whether every report (batch, cold, warm, burst) is
//! byte-identical — the serving determinism contract, checked on the
//! real bench workload. Results go to `BENCH_serve_cache.json`; the
//! timings are measured wall-clock, so the file is a recorded artifact,
//! not a deterministic output.

use serde::{Number, Value};
use wx_core::spokesman::SolverKind;
use wx_lab::runner::Runner;
use wx_lab::source::GraphSource;
use wx_lab::spec::{ScenarioSpec, Task};
use wx_lab::{LabError, Result};
use wx_trace::Clock;

use crate::service::{Response, ServeConfig, Service};

struct Params {
    n: usize,
    d: usize,
    set_size: usize,
    trials: usize,
    burst: usize,
}

fn bench_spec(p: &Params) -> ScenarioSpec {
    ScenarioSpec {
        name: "serve-cache-bench".to_string(),
        description: "cold vs warm artifact-cache latency for a spokesman scenario".to_string(),
        source: GraphSource::RandomRegular { n: p.n, d: p.d },
        task: Task::Spokesman {
            set_size: p.set_size,
            solvers: Some(vec![SolverKind::Portfolio]),
        },
        trials: p.trials,
        seed: 7,
    }
}

fn report_of(response: &Response) -> Result<String> {
    response
        .outcome
        .clone()
        .map_err(|e| LabError::Io(format!("bench request failed: {e}")))
}

/// Runs the serve-cache benchmark and returns the pretty-JSON report
/// destined for `BENCH_serve_cache.json`.
pub fn run(smoke: bool) -> Result<String> {
    let p = if smoke {
        Params {
            n: 256,
            d: 4,
            set_size: 64,
            trials: 2,
            burst: 8,
        }
    } else {
        Params {
            n: 100_000,
            d: 8,
            set_size: 50_000,
            trials: 1,
            burst: 8,
        }
    };
    let spec = bench_spec(&p);
    spec.validate()?;

    // The reference bytes: the batch pipeline, no cache anywhere.
    let batch_report = Runner::new().run(&spec)?.to_json();

    let service = Service::start(&ServeConfig::default());

    let clock = Clock::start();
    let (cold, _) = service.run(spec.clone())?;
    let cold_seconds = clock.elapsed_seconds();
    let cold_report = report_of(&cold)?;

    let clock = Clock::start();
    let (warm, _) = service.run(spec.clone())?;
    let warm_seconds = clock.elapsed_seconds();
    let warm_report = report_of(&warm)?;

    // Burst: submit N identical requests back-to-back; in-flight ones
    // coalesce. The cache is warm, so this measures response fan-out,
    // not solving.
    let executed_before = service.executed();
    let coalesced_before = service.coalesced();
    let clock = Clock::start();
    let mut jobs = Vec::with_capacity(p.burst);
    for _ in 0..p.burst {
        jobs.push(service.submit(spec.clone())?);
    }
    let mut burst_reports = Vec::with_capacity(p.burst);
    for (job, _) in &jobs {
        burst_reports.push(report_of(&service.wait(job))?);
    }
    let burst_seconds = clock.elapsed_seconds();
    let burst_executed = service.executed() - executed_before;
    let burst_coalesced = service.coalesced() - coalesced_before;
    service.stop();

    let reports_identical = burst_reports
        .iter()
        .chain([&cold_report, &warm_report])
        .all(|r| *r == batch_report);

    let num_u = |n: u64| Value::Num(Number::U64(n));
    let num_f = |x: f64| Value::Num(Number::F64(x));
    let stats = service.cache_stats();
    let doc = Value::Map(vec![
        ("bench".to_string(), Value::Str("serve_cache".to_string())),
        ("smoke".to_string(), Value::Bool(smoke)),
        (
            "config".to_string(),
            Value::Map(vec![
                ("n".to_string(), num_u(p.n as u64)),
                ("d".to_string(), num_u(p.d as u64)),
                ("set_size".to_string(), num_u(p.set_size as u64)),
                ("trials".to_string(), num_u(p.trials as u64)),
                ("burst".to_string(), num_u(p.burst as u64)),
                ("solver".to_string(), Value::Str("portfolio".to_string())),
                ("seed".to_string(), num_u(7)),
            ]),
        ),
        ("cold_seconds".to_string(), num_f(cold_seconds)),
        ("warm_seconds".to_string(), num_f(warm_seconds)),
        (
            "cold_over_warm_speedup".to_string(),
            num_f(if warm_seconds > 0.0 {
                cold_seconds / warm_seconds
            } else {
                0.0
            }),
        ),
        (
            "burst".to_string(),
            Value::Map(vec![
                ("requests".to_string(), num_u(p.burst as u64)),
                ("executed".to_string(), num_u(burst_executed)),
                ("coalesced".to_string(), num_u(burst_coalesced)),
                ("seconds".to_string(), num_f(burst_seconds)),
                (
                    "requests_per_second".to_string(),
                    num_f(if burst_seconds > 0.0 {
                        p.burst as f64 / burst_seconds
                    } else {
                        0.0
                    }),
                ),
            ]),
        ),
        (
            "reports_identical_to_batch".to_string(),
            Value::Bool(reports_identical),
        ),
        (
            "cache".to_string(),
            serde::to_value(&stats).unwrap_or(Value::Null),
        ),
    ]);
    let mut text = serde_json::to_string_pretty(&doc)
        .map_err(|e| LabError::Io(format!("serializing bench report: {e}")))?;
    text.push('\n');
    Ok(text)
}
