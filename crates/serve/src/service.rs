//! The request loop: a bounded worker pool over a shared artifact cache,
//! with submission-time request coalescing.
//!
//! # Coalescing
//!
//! Requests are keyed by [`canon::spec_key`] — the canonical content
//! address of the whole spec. Submission consults the in-flight table
//! first: if an identical request is queued or executing, the new
//! submission *attaches* to it instead of enqueuing, so N identical
//! concurrent requests cost one execution and produce N identical
//! responses. The decision happens at submission (not at dequeue), which
//! makes the "N → 1" guarantee independent of worker timing. Completed
//! jobs leave the in-flight table; a later identical request re-executes
//! — against a warm cache, so it pays view-extraction, not solver time.
//!
//! # Determinism
//!
//! A job executes exactly the batch pipeline
//! ([`Runner::run_ctx`](wx_lab::runner::Runner::run_ctx)) with the
//! service's [`ArtifactCache`] attached; report bytes are the batch
//! path's bytes, regardless of worker count, queue order, or cache
//! state. Wall-clock serving telemetry (queue/run time, cache-hit
//! deltas) lives in the response *envelope*, never in the report — that
//! is what keeps the report byte-deterministic while still exposing
//! per-request metrics.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

use wx_lab::cache::{ArtifactCache, CacheConfig, CacheStats, RunContext};
use wx_lab::canon;
use wx_lab::runner::Runner;
use wx_lab::spec::ScenarioSpec;
use wx_lab::Result;
use wx_trace::Clock;

/// Configuration of a [`Service`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads executing requests ([`Service::start`] spawns them).
    pub workers: usize,
    /// Run each request's trials sequentially instead of rayon-parallel
    /// (report bytes are identical either way; this only trades intra-
    /// request parallelism for lower per-request memory).
    pub sequential: bool,
    /// Artifact-cache budgets and persistence.
    pub cache: CacheConfig,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 2,
            sequential: false,
            cache: CacheConfig::default(),
        }
    }
}

/// What one request produced: the report (or error) plus the serving
/// telemetry for the response envelope.
#[derive(Debug)]
pub struct Response {
    /// The scenario name, echoed for envelope consumers.
    pub name: String,
    /// The report's exact pretty-JSON bytes, or the execution error.
    pub outcome: std::result::Result<String, String>,
    /// Microseconds between submission and execution start.
    pub queue_us: u64,
    /// Microseconds of execution.
    pub run_us: u64,
    /// Cache activity observed while this request executed (a delta of
    /// the service-wide stats; concurrent requests' activity can bleed
    /// into each other's deltas, the cumulative totals are exact).
    pub cache: CacheStats,
}

/// One submitted request; identical in-flight submissions share one `Job`.
pub struct Job {
    key: u64,
    spec: ScenarioSpec,
    queued: Clock,
    state: Mutex<Option<Arc<Response>>>,
    done: Condvar,
}

impl Job {
    /// The canonical content address this job coalesces under.
    #[must_use]
    pub fn key(&self) -> u64 {
        self.key
    }
}

struct ServiceInner {
    cache: ArtifactCache,
    sequential: bool,
    queue: Mutex<VecDeque<Arc<Job>>>,
    queue_ready: Condvar,
    inflight: Mutex<BTreeMap<u64, Arc<Job>>>,
    shutdown: AtomicBool,
    executed: AtomicU64,
    coalesced: AtomicU64,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ServiceInner {
    fn execute(&self, job: &Arc<Job>) {
        let queue_us = job.queued.elapsed().as_micros() as u64;
        let before = self.cache.stats();
        let run = Clock::start();
        let runner = if self.sequential {
            Runner::new().sequential()
        } else {
            Runner::new()
        };
        let ctx = RunContext {
            graphs: Some(&self.cache),
            solutions: Some(&self.cache),
        };
        let outcome = runner
            .run_ctx(&job.spec, &ctx)
            .map(|report| report.to_json())
            .map_err(|e| e.to_string());
        let response = Arc::new(Response {
            name: job.spec.name.clone(),
            outcome,
            queue_us,
            run_us: run.elapsed().as_micros() as u64,
            cache: self.cache.stats().delta_since(&before),
        });
        self.executed.fetch_add(1, Ordering::SeqCst);
        // Leave the in-flight table *before* publishing, so a submission
        // racing with completion either attaches to this finished job or
        // opens a fresh one — never observes a key with no job.
        lock(&self.inflight).remove(&job.key);
        let mut slot = lock(&job.state);
        *slot = Some(response);
        job.done.notify_all();
    }

    fn worker_loop(self: &Arc<Self>) {
        loop {
            let job = {
                let mut queue = lock(&self.queue);
                loop {
                    if let Some(job) = queue.pop_front() {
                        break job;
                    }
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    queue = self
                        .queue_ready
                        .wait(queue)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            self.execute(&job);
        }
    }
}

/// A running scenario service (cheaply cloneable handle).
#[derive(Clone)]
pub struct Service {
    inner: Arc<ServiceInner>,
}

impl Service {
    /// Creates a service with **no workers running** — submissions queue
    /// but nothing executes until [`Service::start_workers`]. The
    /// coalescing tests use this to make "N identical submissions → one
    /// execution" deterministic rather than timing-dependent.
    #[must_use]
    pub fn new(config: &ServeConfig) -> Service {
        Service {
            inner: Arc::new(ServiceInner {
                cache: ArtifactCache::new(config.cache.clone()),
                sequential: config.sequential,
                queue: Mutex::new(VecDeque::new()),
                queue_ready: Condvar::new(),
                inflight: Mutex::new(BTreeMap::new()),
                shutdown: AtomicBool::new(false),
                executed: AtomicU64::new(0),
                coalesced: AtomicU64::new(0),
            }),
        }
    }

    /// [`Service::new`] plus `config.workers` started workers.
    #[must_use]
    pub fn start(config: &ServeConfig) -> Service {
        let service = Service::new(config);
        service.start_workers(config.workers);
        service
    }

    /// Spawns `n` worker threads draining the queue until
    /// [`Service::stop`].
    pub fn start_workers(&self, n: usize) {
        for _ in 0..n.max(1) {
            let inner = Arc::clone(&self.inner);
            std::thread::spawn(move || inner.worker_loop());
        }
    }

    /// Asks workers to exit once the queue drains. Queued jobs still
    /// execute; new submissions still enqueue (callers stop submitting
    /// before stopping).
    pub fn stop(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue_ready.notify_all();
    }

    /// Submits a request. Returns the job plus whether it *coalesced*
    /// onto an identical in-flight request (true = no new execution was
    /// scheduled). The job key is the canonical spec hash, so field
    /// order and whitespace in the original JSON never split executions.
    pub fn submit(&self, spec: ScenarioSpec) -> Result<(Arc<Job>, bool)> {
        let key = canon::spec_key(&spec)?;
        let mut inflight = lock(&self.inner.inflight);
        if let Some(job) = inflight.get(&key) {
            self.inner.coalesced.fetch_add(1, Ordering::SeqCst);
            return Ok((Arc::clone(job), true));
        }
        let job = Arc::new(Job {
            key,
            spec,
            queued: Clock::start(),
            state: Mutex::new(None),
            done: Condvar::new(),
        });
        inflight.insert(key, Arc::clone(&job));
        drop(inflight);
        lock(&self.inner.queue).push_back(Arc::clone(&job));
        self.inner.queue_ready.notify_one();
        Ok((job, false))
    }

    /// Blocks until `job` completes and returns its response.
    #[must_use]
    pub fn wait(&self, job: &Job) -> Arc<Response> {
        let mut slot = lock(&job.state);
        loop {
            if let Some(response) = slot.as_ref() {
                return Arc::clone(response);
            }
            slot = job.done.wait(slot).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Submit-and-wait for in-process callers (HTTP handler, bench).
    pub fn run(&self, spec: ScenarioSpec) -> Result<(Arc<Response>, bool)> {
        let (job, coalesced) = self.submit(spec)?;
        Ok((self.wait(&job), coalesced))
    }

    /// Cumulative cache activity.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.stats()
    }

    /// Requests actually executed (coalesced attachments excluded).
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.inner.executed.load(Ordering::SeqCst)
    }

    /// Submissions that attached to an in-flight identical request.
    #[must_use]
    pub fn coalesced(&self) -> u64 {
        self.inner.coalesced.load(Ordering::SeqCst)
    }
}
