//! The stdin-jsonl protocol: one request per input line, one response
//! envelope per output line, responses in request order.
//!
//! # Request lines
//!
//! Each non-blank line is either a bare [`ScenarioSpec`] document or an
//! envelope `{"id": <u64>, "spec": {...}}`. Bare specs get the 1-based
//! line number as their id. Blank lines and lines starting with `#` are
//! skipped (so request files can carry comments).
//!
//! # Response envelopes
//!
//! One compact-JSON line per request, in request order:
//!
//! ```json
//! {"id":1,"ok":true,"name":"...","coalesced":false,
//!  "queue_us":12,"run_us":3456,"cache":{...},"report":"<pretty JSON>"}
//! ```
//!
//! The `report` field holds the *exact* bytes `wx run` would print,
//! JSON-escaped into a string; `--out-dir DIR` additionally writes those
//! raw bytes to `DIR/<id>.json` so they can be compared with `cmp`.
//! Failures produce `{"id":N,"ok":false,"error":"..."}`. Everything
//! wall-clock-dependent stays in the envelope; the report bytes are
//! byte-deterministic.

use std::io::{BufRead, Write};
use std::path::Path;
use std::sync::Arc;

use serde::Value;
use wx_lab::spec::ScenarioSpec;
use wx_lab::{LabError, Result};

use crate::service::{Job, Response, Service};

/// A parsed request line: the id it will answer under plus its spec.
#[derive(Clone, Debug)]
pub struct Request {
    /// Envelope id (explicit `"id"` field, else the 1-based line number).
    pub id: u64,
    /// The scenario to execute.
    pub spec: ScenarioSpec,
}

/// Parses one request line (see the module docs for the two shapes).
/// `line_no` is 1-based and doubles as the default id.
pub fn parse_request(line: &str, line_no: u64) -> Result<Request> {
    let context = format!("request line {line_no}");
    let value: Value = serde_json::from_str(line).map_err(|e| LabError::json(&context, e))?;
    let (id, spec_value) = match value.get("spec") {
        Some(spec) => {
            let id = match value.get("id") {
                Some(v) => v.as_u64().ok_or_else(|| {
                    LabError::json(&context, "\"id\" must be a non-negative integer")
                })?,
                None => line_no,
            };
            (id, spec.clone())
        }
        None => (line_no, value),
    };
    let spec: ScenarioSpec =
        serde::from_value(spec_value).map_err(|e| LabError::json(&context, e))?;
    spec.validate()?;
    Ok(Request { id, spec })
}

fn stats_value(stats: &wx_lab::CacheStats) -> Value {
    serde::to_value(stats).unwrap_or(Value::Null)
}

/// Renders the response envelope for one completed request (compact
/// JSON, no trailing newline).
#[must_use]
pub fn envelope(id: u64, coalesced: bool, response: &Response) -> String {
    let num = |n: u64| Value::Num(serde::Number::U64(n));
    let mut fields = vec![("id".to_string(), num(id))];
    match &response.outcome {
        Ok(report) => {
            fields.push(("ok".to_string(), Value::Bool(true)));
            fields.push(("name".to_string(), Value::Str(response.name.clone())));
            fields.push(("coalesced".to_string(), Value::Bool(coalesced)));
            fields.push(("queue_us".to_string(), num(response.queue_us)));
            fields.push(("run_us".to_string(), num(response.run_us)));
            fields.push(("cache".to_string(), stats_value(&response.cache)));
            fields.push(("report".to_string(), Value::Str(report.clone())));
        }
        Err(error) => {
            fields.push(("ok".to_string(), Value::Bool(false)));
            fields.push(("error".to_string(), Value::Str(error.clone())));
        }
    }
    serde_json::to_string(&Value::Map(fields)).unwrap_or_default()
}

/// The error envelope for a line that never became a job (parse or
/// validation failure).
#[must_use]
pub fn error_envelope(id: u64, error: &LabError) -> String {
    let fields = vec![
        ("id".to_string(), Value::Num(serde::Number::U64(id))),
        ("ok".to_string(), Value::Bool(false)),
        ("error".to_string(), Value::Str(error.to_string())),
    ];
    serde_json::to_string(&Value::Map(fields)).unwrap_or_default()
}

enum Pending {
    Job {
        id: u64,
        coalesced: bool,
        job: Arc<Job>,
    },
    Failed {
        id: u64,
        error: LabError,
    },
}

/// Drives the full stdin-jsonl session: reads request lines from
/// `input`, submits them all (so identical back-to-back requests
/// coalesce), then writes one envelope per request to `output` in
/// request order. With `out_dir`, each successful report's raw bytes
/// also land in `out_dir/<id>.json`.
///
/// Returns the number of failed requests (parse failures count).
pub fn run_session(
    service: &Service,
    input: &mut dyn BufRead,
    output: &mut dyn Write,
    out_dir: Option<&Path>,
) -> Result<u64> {
    if let Some(dir) = out_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| LabError::Io(format!("creating {}: {e}", dir.display())))?;
    }
    let mut pending = Vec::new();
    let mut line = String::new();
    let mut line_no = 0u64;
    loop {
        line.clear();
        let read = input
            .read_line(&mut line)
            .map_err(|e| LabError::Io(format!("reading request line: {e}")))?;
        if read == 0 {
            break;
        }
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        match parse_request(trimmed, line_no) {
            Ok(request) => match service.submit(request.spec) {
                Ok((job, coalesced)) => pending.push(Pending::Job {
                    id: request.id,
                    coalesced,
                    job,
                }),
                Err(error) => pending.push(Pending::Failed {
                    id: request.id,
                    error,
                }),
            },
            Err(error) => pending.push(Pending::Failed { id: line_no, error }),
        }
    }
    let mut failures = 0u64;
    for entry in pending {
        let envelope_line = match entry {
            Pending::Job { id, coalesced, job } => {
                let response = service.wait(&job);
                if response.outcome.is_err() {
                    failures += 1;
                }
                if let (Some(dir), Ok(report)) = (out_dir, &response.outcome) {
                    let path = dir.join(format!("{id}.json"));
                    std::fs::write(&path, report)
                        .map_err(|e| LabError::Io(format!("writing {}: {e}", path.display())))?;
                }
                envelope(id, coalesced, &response)
            }
            Pending::Failed { id, error } => {
                failures += 1;
                error_envelope(id, &error)
            }
        };
        writeln!(output, "{envelope_line}")
            .map_err(|e| LabError::Io(format!("writing response: {e}")))?;
    }
    output
        .flush()
        .map_err(|e| LabError::Io(format!("flushing responses: {e}")))?;
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_json(name: &str) -> String {
        format!(
            concat!(
                "{{\"name\":\"{}\",\"source\":{{\"Hypercube\":{{\"dim\":3}}}},",
                "\"task\":{{\"Measure\":{{\"notion\":\"Wireless\",\"fast\":true}}}},",
                "\"trials\":1,\"seed\":7}}"
            ),
            name
        )
    }

    #[test]
    fn bare_spec_gets_line_number_id() {
        let request = parse_request(&spec_json("a"), 3).unwrap();
        assert_eq!(request.id, 3);
        assert_eq!(request.spec.name, "a");
    }

    #[test]
    fn envelope_wrapper_overrides_id() {
        let line = format!("{{\"id\": 42, \"spec\": {}}}", spec_json("b"));
        let request = parse_request(&line, 1).unwrap();
        assert_eq!(request.id, 42);
        assert_eq!(request.spec.name, "b");
    }

    #[test]
    fn bad_json_is_an_error() {
        assert!(parse_request("{not json", 1).is_err());
        assert!(parse_request("{\"id\": \"x\", \"spec\": {}}", 1).is_err());
    }
}
