//! The `wx` front end: the serving subcommands live here, everything
//! else is delegated verbatim to [`wx_lab::cli`].
//!
//! ```text
//! wx serve --stdin [--out-dir DIR] [serve options]
//! wx serve --http ADDR [serve options]
//! wx bench --serve [--smoke] [--out PATH]
//! ```
//!
//! Serve options: `--workers N` (default 2), `--sequential`,
//! `--graph-cache-bytes N`, `--solution-cache-bytes N`,
//! `--persist DIR`. Exit codes match the batch CLI: 0 success, 1
//! runtime failure (including any failed request in a stdin-jsonl
//! session), 2 usage error.

use std::path::PathBuf;

use wx_lab::cache::CacheConfig;
use wx_lab::cli::Flags;
use wx_lab::{LabError, Result};

use crate::http::HttpServer;
use crate::jsonl;
use crate::service::{ServeConfig, Service};

/// Entry point used by the `wx` binary: parses `args` (without the
/// program name) and returns the process exit code.
pub fn main_with_args(args: &[String]) -> i32 {
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{}", usage());
        eprintln!();
        eprintln!("{}", wx_lab::cli::usage());
        return 2;
    };
    match command.as_str() {
        "serve" => exit_code(cmd_serve(rest)),
        "bench" if rest.iter().any(|a| a == "--serve") => exit_code(cmd_bench_serve(rest)),
        "help" | "--help" | "-h" => {
            println!("{}", wx_lab::cli::usage());
            println!();
            println!("{}", usage());
            0
        }
        _ => wx_lab::cli::main_with_args(args),
    }
}

fn exit_code(result: Result<i32>) -> i32 {
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("wx: {e}");
            match e {
                LabError::InvalidSpec(_) | LabError::Json { .. } => 2,
                _ => 1,
            }
        }
    }
}

/// The serving half of the help text (the batch half comes from
/// [`wx_lab::cli::usage`]).
pub fn usage() -> &'static str {
    "SERVING:
  wx serve --stdin [--out-dir DIR] [--workers N] [--sequential]
           [--graph-cache-bytes N] [--solution-cache-bytes N] [--persist DIR]
  wx serve --http ADDR [same options]
  wx bench --serve [--smoke] [--out PATH]

`wx serve --stdin` reads one request per line (a scenario spec, or
'{\"id\": N, \"spec\": {…}}'), executes on a bounded worker pool over a
content-addressed artifact cache, and answers one envelope line per
request in request order; the `report` field carries the exact bytes
`wx run` would print (also written raw to --out-dir/<id>.json).
Identical in-flight requests coalesce into one execution. `--http ADDR`
serves the same engine over HTTP/1.1: POST /run (body = spec, response
= report bytes, telemetry in X-Wx-* headers), GET /healthz, GET /stats.
`--persist DIR` writes solution artifacts to disk so a restarted server
warms from it. `wx bench --serve` measures cold vs warm cache latency
and coalesced burst throughput into BENCH_serve_cache.json."
}

fn parse_serve_config(flags: &mut Flags) -> Result<ServeConfig> {
    let mut config = ServeConfig::default();
    if let Some(workers) = flags.take_parsed::<usize>("--workers")? {
        if workers == 0 {
            return Err(LabError::invalid("--workers must be at least 1"));
        }
        config.workers = workers;
    }
    config.sequential = flags.take_flag("--sequential");
    config.cache = CacheConfig {
        graph_budget_bytes: flags.take_parsed::<u64>("--graph-cache-bytes")?,
        solution_budget_bytes: flags.take_parsed::<u64>("--solution-cache-bytes")?,
        persist_dir: flags.take_value("--persist")?.map(PathBuf::from),
    };
    Ok(config)
}

fn cmd_serve(args: &[String]) -> Result<i32> {
    let mut flags = Flags::new(args);
    let stdin_mode = flags.take_flag("--stdin");
    let http_addr = flags.take_value("--http")?;
    let out_dir = flags.take_value("--out-dir")?.map(PathBuf::from);
    let config = parse_serve_config(&mut flags)?;
    flags.finish_no_positionals()?;
    match (stdin_mode, http_addr) {
        (true, Some(_)) => Err(LabError::invalid(
            "--stdin and --http are mutually exclusive",
        )),
        (false, None) => Err(LabError::invalid(
            "wx serve needs a transport: --stdin or --http ADDR",
        )),
        (true, None) => {
            let service = Service::start(&config);
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let failures = jsonl::run_session(
                &service,
                &mut stdin.lock(),
                &mut stdout.lock(),
                out_dir.as_deref(),
            )?;
            let stats = service.cache_stats();
            eprintln!(
                "wx serve: {} executed, {} coalesced, graph hits {}, solution hits {} ({} from disk)",
                service.executed(),
                service.coalesced(),
                stats.graph_hits,
                stats.solution_hits,
                stats.solution_disk_hits,
            );
            service.stop();
            Ok(if failures > 0 { 1 } else { 0 })
        }
        (false, Some(addr)) => {
            if out_dir.is_some() {
                return Err(LabError::invalid("--out-dir only applies to --stdin"));
            }
            let service = Service::start(&config);
            let server = HttpServer::bind(service, &addr)?;
            eprintln!("wx serve: listening on http://{}", server.local_addr()?);
            server.serve_forever()?;
            Ok(0)
        }
    }
}

fn cmd_bench_serve(args: &[String]) -> Result<i32> {
    let mut flags = Flags::new(args);
    let _ = flags.take_flag("--serve");
    let smoke = flags.take_flag("--smoke");
    let out = flags
        .take_value("--out")?
        .unwrap_or_else(|| "crates/bench/BENCH_serve_cache.json".to_string());
    flags.finish_no_positionals()?;
    let report = crate::bench::run(smoke)?;
    std::fs::write(&out, &report).map_err(|e| LabError::Io(format!("writing {out}: {e}")))?;
    eprintln!("wx bench --serve: wrote {out}");
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_commands_fall_through_to_lab() {
        // the batch CLI owns the rejection, with its usage-error exit code
        let args = vec!["definitely-not-a-command".to_string()];
        assert_eq!(main_with_args(&args), 2);
    }

    #[test]
    fn serve_needs_a_transport() {
        assert_eq!(main_with_args(&["serve".to_string()]), 2);
    }

    #[test]
    fn serve_rejects_both_transports() {
        let args: Vec<String> = ["serve", "--stdin", "--http", "127.0.0.1:0"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(main_with_args(&args), 2);
    }

    #[test]
    fn serve_rejects_zero_workers() {
        let args: Vec<String> = ["serve", "--stdin", "--workers", "0"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(main_with_args(&args), 2);
    }
}
