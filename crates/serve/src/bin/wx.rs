fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(wx_serve::cli::main_with_args(&args));
}
