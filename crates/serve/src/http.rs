//! A minimal, dependency-free HTTP/1.1 front end for the service.
//!
//! Deliberately tiny: just enough of HTTP/1.1 to serve local tooling —
//! request line + headers + `Content-Length` body, no chunked encoding,
//! no keep-alive (every response closes the connection). Routes:
//!
//! | Route           | Behaviour                                          |
//! |-----------------|----------------------------------------------------|
//! | `POST /run`     | Body is a [`ScenarioSpec`]; replies 200 with the   |
//! |                 | exact `wx run` report bytes, or 400 with the error |
//! | `GET /healthz`  | `200 ok`                                           |
//! | `GET /stats`    | Cumulative service counters as JSON                |
//!
//! Serving telemetry rides in `X-Wx-*` response headers (queue/run
//! microseconds, coalesced flag, cache-hit deltas), keeping the body
//! byte-identical to the batch CLI across cache states.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};

use serde::Value;
use wx_lab::spec::ScenarioSpec;
use wx_lab::{LabError, Result};

use crate::service::Service;

/// Hard cap on request bodies (16 MiB) — a local-tooling guard, not a
/// security boundary.
const MAX_BODY_BYTES: usize = 16 << 20;

/// A bound listener plus the service it fronts.
pub struct HttpServer {
    listener: TcpListener,
    service: Service,
}

struct ParsedRequest {
    method: String,
    path: String,
    body: Vec<u8>,
}

fn read_request(stream: &mut TcpStream) -> std::io::Result<Option<ParsedRequest>> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line)? == 0 {
        return Ok(None);
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let path = parts.next().unwrap_or("").to_string();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Ok(Some(ParsedRequest {
            method,
            path,
            body: Vec::new(),
        }));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(ParsedRequest { method, path, body }))
}

fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    extra_headers: &[(String, String)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

fn stats_body(service: &Service) -> Vec<u8> {
    let num = |n: u64| Value::Num(serde::Number::U64(n));
    let cache = serde::to_value(&service.cache_stats()).unwrap_or(Value::Null);
    let doc = Value::Map(vec![
        ("executed".to_string(), num(service.executed())),
        ("coalesced".to_string(), num(service.coalesced())),
        ("cache".to_string(), cache),
    ]);
    let mut body = serde_json::to_string_pretty(&doc).unwrap_or_default();
    body.push('\n');
    body.into_bytes()
}

fn handle_run(service: &Service, stream: &mut TcpStream, body: &[u8]) -> std::io::Result<()> {
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => {
            return write_response(
                stream,
                "400 Bad Request",
                "text/plain",
                &[],
                b"request body is not UTF-8\n",
            );
        }
    };
    let spec = match ScenarioSpec::from_json(text, "http request body") {
        Ok(spec) => spec,
        Err(error) => {
            let message = format!("{error}\n");
            return write_response(
                stream,
                "400 Bad Request",
                "text/plain",
                &[],
                message.as_bytes(),
            );
        }
    };
    match service.run(spec) {
        Ok((response, coalesced)) => {
            let headers = vec![
                ("X-Wx-Queue-Us".to_string(), response.queue_us.to_string()),
                ("X-Wx-Run-Us".to_string(), response.run_us.to_string()),
                ("X-Wx-Coalesced".to_string(), coalesced.to_string()),
                (
                    "X-Wx-Graph-Hits".to_string(),
                    response.cache.graph_hits.to_string(),
                ),
                (
                    "X-Wx-Solution-Hits".to_string(),
                    response.cache.solution_hits.to_string(),
                ),
            ];
            match &response.outcome {
                Ok(report) => write_response(
                    stream,
                    "200 OK",
                    "application/json",
                    &headers,
                    report.as_bytes(),
                ),
                Err(error) => {
                    let message = format!("{error}\n");
                    write_response(
                        stream,
                        "400 Bad Request",
                        "text/plain",
                        &headers,
                        message.as_bytes(),
                    )
                }
            }
        }
        Err(error) => {
            let message = format!("{error}\n");
            write_response(
                stream,
                "400 Bad Request",
                "text/plain",
                &[],
                message.as_bytes(),
            )
        }
    }
}

fn handle_connection(service: &Service, stream: &mut TcpStream) -> std::io::Result<()> {
    let Some(request) = read_request(stream)? else {
        return Ok(());
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/run") => handle_run(service, stream, &request.body),
        ("GET", "/healthz") => write_response(stream, "200 OK", "text/plain", &[], b"ok\n"),
        ("GET", "/stats") => write_response(
            stream,
            "200 OK",
            "application/json",
            &[],
            &stats_body(service),
        ),
        ("POST" | "GET", _) => {
            write_response(stream, "404 Not Found", "text/plain", &[], b"not found\n")
        }
        _ => write_response(
            stream,
            "405 Method Not Allowed",
            "text/plain",
            &[],
            b"method not allowed\n",
        ),
    }
}

impl HttpServer {
    /// Binds `addr` (e.g. `127.0.0.1:8080`, or port `0` for an
    /// OS-assigned port in tests) in front of `service`.
    pub fn bind(service: Service, addr: &str) -> Result<HttpServer> {
        let listener =
            TcpListener::bind(addr).map_err(|e| LabError::Io(format!("binding {addr}: {e}")))?;
        Ok(HttpServer { listener, service })
    }

    /// The locally bound address (useful with port `0`).
    pub fn local_addr(&self) -> Result<std::net::SocketAddr> {
        self.listener
            .local_addr()
            .map_err(|e| LabError::Io(format!("reading local addr: {e}")))
    }

    /// Accept loop: one thread per connection, forever (until the
    /// process exits). Per-connection I/O errors are reported to stderr
    /// and do not take the server down.
    pub fn serve_forever(&self) -> Result<()> {
        loop {
            let (mut stream, _peer) = self
                .listener
                .accept()
                .map_err(|e| LabError::Io(format!("accepting connection: {e}")))?;
            let service = self.service.clone();
            std::thread::spawn(move || {
                if let Err(e) = handle_connection(&service, &mut stream) {
                    // wx-allow(hygiene): a dead connection has nowhere else to report
                    eprintln!("wx serve: connection error: {e}");
                }
            });
        }
    }

    /// Handles exactly `n` connections on the calling thread, then
    /// returns — the deterministic accept loop the integration tests
    /// drive.
    pub fn serve_n(&self, n: usize) -> Result<()> {
        for _ in 0..n {
            let (mut stream, _peer) = self
                .listener
                .accept()
                .map_err(|e| LabError::Io(format!("accepting connection: {e}")))?;
            handle_connection(&self.service, &mut stream)
                .map_err(|e| LabError::Io(format!("handling connection: {e}")))?;
        }
        Ok(())
    }
}
