//! `wx-serve` — the long-running scenario service and the `wx` CLI
//! entry point.
//!
//! The batch pipeline (`wx run`) rebuilds every graph and re-runs every
//! solver from scratch. This crate keeps a process alive instead: a
//! bounded worker pool executes [`ScenarioSpec`](wx_lab::spec::ScenarioSpec)
//! requests against a shared content-addressed
//! [`ArtifactCache`](wx_lab::ArtifactCache), so repeated and
//! overlapping requests pay solver time once.
//!
//! - [`service`] — worker pool, request coalescing, response envelopes.
//! - [`jsonl`] — the stdin-jsonl transport (one request line in, one
//!   envelope line out, responses in request order).
//! - [`http`] — a minimal dependency-free HTTP/1.1 front end
//!   (`POST /run`, `GET /healthz`, `GET /stats`).
//! - [`cli`] — the `wx` front end; serving subcommands here, batch
//!   subcommands delegated to [`wx_lab::cli`].
//! - [`mod@bench`] — `wx bench --serve`, the cold/warm/coalesced-burst
//!   latency benchmark behind `BENCH_serve_cache.json`.
//!
//! The contract throughout: report bytes are exactly what `wx run`
//! prints — invariant under worker count, cache state, coalescing, and
//! trial parallelism. Everything wall-clock-dependent (queue/run time,
//! hit counts) travels in envelopes or headers, never in reports.

pub mod bench;
pub mod cli;
pub mod http;
pub mod jsonl;
pub mod service;

pub use http::HttpServer;
pub use service::{Response, ServeConfig, Service};
