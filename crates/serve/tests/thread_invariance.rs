//! Report bytes are identical across rayon thread counts and with
//! tracing on or off — exercised through real `wx` subprocesses,
//! because the rayon shim caches `RAYON_NUM_THREADS` per process.
//! (Moved here from `crates/lab/tests/` with the `wx` binary itself.)

#[test]
fn reports_are_byte_identical_across_thread_counts_and_tracing() {
    let wx = env!("CARGO_BIN_EXE_wx");
    let scenario = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios/smoke.json");
    let dir = std::env::temp_dir().join("wx-serve-telemetry-threads");
    std::fs::create_dir_all(&dir).unwrap();

    let mut reports: Vec<(String, String)> = Vec::new();
    for threads in ["1", "4", "8"] {
        for traced in [false, true] {
            let label = format!("threads={threads} traced={traced}");
            let out = dir.join(format!("report-{threads}-{traced}.json"));
            let mut cmd = std::process::Command::new(wx);
            cmd.arg("run")
                .arg(scenario)
                .arg("--out")
                .arg(&out)
                .env("RAYON_NUM_THREADS", threads);
            let trace_path = dir.join(format!("trace-{threads}.json"));
            if traced {
                cmd.arg("--trace").arg(&trace_path);
            }
            let output = cmd.output().expect("spawning wx");
            assert!(
                output.status.success(),
                "[{label}] wx run failed: {}",
                String::from_utf8_lossy(&output.stderr)
            );
            if traced {
                assert!(
                    std::fs::read_to_string(&trace_path)
                        .unwrap()
                        .contains("\"ph\":\"X\""),
                    "[{label}] trace has no spans"
                );
            }
            reports.push((label, std::fs::read_to_string(&out).unwrap()));
        }
    }
    let (first_label, first) = &reports[0];
    assert!(first.contains("\"telemetry\""), "{first}");
    for (label, report) in &reports[1..] {
        assert_eq!(
            first, report,
            "report bytes differ between {first_label} and {label}"
        );
    }
}
