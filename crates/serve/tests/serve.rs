//! End-to-end tests for the scenario service: the serving determinism
//! contract (serve bytes == batch bytes, cold and warm, any worker
//! count), request coalescing, eviction-pressure determinism, the
//! stdin-jsonl session protocol, and the HTTP front end.

use std::io::{Cursor, Read, Write};
use std::net::TcpStream;

use wx_core::spokesman::SolverKind;
use wx_lab::runner::Runner;
use wx_lab::source::GraphSource;
use wx_lab::spec::{ScenarioSpec, Task};
use wx_lab::CacheConfig;
use wx_serve::jsonl;
use wx_serve::{HttpServer, ServeConfig, Service};

fn spokesman_spec(name: &str, n: usize, seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        name: name.to_string(),
        description: String::new(),
        source: GraphSource::RandomRegular { n, d: 4 },
        task: Task::Spokesman {
            set_size: n / 4,
            solvers: Some(vec![SolverKind::GreedyMinDegree, SolverKind::Partition]),
        },
        trials: 3,
        seed,
    }
}

fn measure_spec(name: &str, seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        name: name.to_string(),
        description: String::new(),
        source: GraphSource::Hypercube { dim: 4 },
        task: Task::Measure {
            notion: wx_core::expansion::engine::NotionKind::Wireless,
            alpha: None,
            exact_up_to: None,
            fast: Some(true),
        },
        trials: 2,
        seed,
    }
}

fn report(service: &Service, spec: &ScenarioSpec) -> String {
    let (response, _) = service.run(spec.clone()).unwrap();
    response.outcome.clone().unwrap()
}

#[test]
fn serve_bytes_match_batch_cold_and_warm_across_worker_counts() {
    let spec = spokesman_spec("serve-vs-batch", 48, 11);
    let batch = Runner::new().run(&spec).unwrap().to_json();
    for workers in [1usize, 4] {
        let service = Service::start(&ServeConfig {
            workers,
            ..ServeConfig::default()
        });
        let cold = report(&service, &spec);
        let warm = report(&service, &spec);
        service.stop();
        assert_eq!(cold, batch, "cold serve bytes diverged (workers={workers})");
        assert_eq!(warm, batch, "warm serve bytes diverged (workers={workers})");
        let stats = service.cache_stats();
        assert!(stats.graph_hits > 0, "warm run should hit the graph cache");
        assert!(
            stats.solution_hits > 0,
            "warm run should hit the solution cache"
        );
    }
}

#[test]
fn identical_inflight_requests_coalesce_to_one_execution() {
    let spec = measure_spec("coalesce", 5);
    // No workers yet: all submissions happen while the first is
    // in-flight, making the coalescing deterministic.
    let service = Service::new(&ServeConfig::default());
    let jobs: Vec<_> = (0..6)
        .map(|_| service.submit(spec.clone()).unwrap())
        .collect();
    assert!(!jobs[0].1, "first submission cannot coalesce");
    assert!(
        jobs[1..].iter().all(|(_, coalesced)| *coalesced),
        "later identical submissions must coalesce"
    );
    service.start_workers(1);
    let reports: Vec<String> = jobs
        .iter()
        .map(|(job, _)| service.wait(job).outcome.clone().unwrap())
        .collect();
    service.stop();
    assert_eq!(service.executed(), 1, "one execution serves all requests");
    assert_eq!(service.coalesced(), 5);
    assert!(reports.iter().all(|r| r == &reports[0]));
    assert_eq!(reports[0], Runner::new().run(&spec).unwrap().to_json());
}

#[test]
fn distinct_requests_do_not_coalesce() {
    let service = Service::new(&ServeConfig::default());
    let (_, c1) = service.submit(measure_spec("a", 5)).unwrap();
    let (_, c2) = service.submit(measure_spec("b", 5)).unwrap();
    let (_, c3) = service.submit(measure_spec("a", 6)).unwrap();
    assert!(!c1 && !c2 && !c3);
    service.start_workers(2);
    service.stop();
}

#[test]
fn eviction_pressure_does_not_change_report_bytes() {
    // Budgets far below one graph / one solution: every request evicts,
    // nothing is ever warm — bytes must not care.
    let spec = spokesman_spec("evict", 32, 3);
    let batch = Runner::new().run(&spec).unwrap().to_json();
    let service = Service::start(&ServeConfig {
        workers: 2,
        sequential: false,
        cache: CacheConfig {
            graph_budget_bytes: Some(64),
            solution_budget_bytes: Some(64),
            persist_dir: None,
        },
    });
    let first = report(&service, &spec);
    let second = report(&service, &spec);
    service.stop();
    assert_eq!(first, batch);
    assert_eq!(second, batch);
    let stats = service.cache_stats();
    assert!(
        stats.graph_evictions > 0 || stats.solution_evictions > 0,
        "tiny budgets should force evictions (got {stats:?})"
    );
}

#[test]
fn jsonl_session_answers_in_order_and_writes_raw_reports() {
    let spec_a = measure_spec("jsonl-a", 9);
    let spec_b = measure_spec("jsonl-b", 10);
    let batch_a = Runner::new().run(&spec_a).unwrap().to_json();
    let batch_b = Runner::new().run(&spec_b).unwrap().to_json();

    let input = format!(
        "# two identical requests, then a distinct one, then garbage\n\
         {{\"id\": 1, \"spec\": {}}}\n\
         {{\"id\": 2, \"spec\": {}}}\n\
         {{\"id\": 3, \"spec\": {}}}\n\
         not json at all\n",
        serde_json::to_string(&spec_a).unwrap(),
        serde_json::to_string(&spec_a).unwrap(),
        serde_json::to_string(&spec_b).unwrap(),
    );
    let out_dir = std::env::temp_dir().join("wx_serve_jsonl_test");
    let _ = std::fs::remove_dir_all(&out_dir);

    let service = Service::start(&ServeConfig::default());
    let mut output = Vec::new();
    let failures = jsonl::run_session(
        &service,
        &mut Cursor::new(input.into_bytes()),
        &mut output,
        Some(&out_dir),
    )
    .unwrap();
    service.stop();
    assert_eq!(failures, 1, "the garbage line fails, nothing else");

    let text = String::from_utf8(output).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4);
    for (line, id) in lines.iter().zip([1u64, 2, 3, 5]) {
        let envelope: serde::Value = serde_json::from_str(line).unwrap();
        assert_eq!(envelope.get("id").and_then(|v| v.as_u64()), Some(id));
    }
    let ok_of = |line: &str| {
        let envelope: serde::Value = serde_json::from_str(line).unwrap();
        envelope.get("ok").and_then(|v| v.as_bool()).unwrap()
    };
    assert!(ok_of(lines[0]) && ok_of(lines[1]) && ok_of(lines[2]));
    assert!(!ok_of(lines[3]));

    // Raw report files carry the exact batch bytes.
    let raw_1 = std::fs::read_to_string(out_dir.join("1.json")).unwrap();
    let raw_2 = std::fs::read_to_string(out_dir.join("2.json")).unwrap();
    let raw_3 = std::fs::read_to_string(out_dir.join("3.json")).unwrap();
    assert_eq!(raw_1, batch_a);
    assert_eq!(raw_2, batch_a);
    assert_eq!(raw_3, batch_b);
    let _ = std::fs::remove_dir_all(&out_dir);
}

#[test]
fn http_round_trip_serves_batch_bytes_and_telemetry_headers() {
    let spec = measure_spec("http", 21);
    let batch = Runner::new().run(&spec).unwrap().to_json();

    let service = Service::start(&ServeConfig::default());
    let server = HttpServer::bind(service, "127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.serve_n(4).unwrap());

    let request = |method: &str, path: &str, body: &str| -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let (head, response_body) = raw.split_once("\r\n\r\n").unwrap();
        (head.to_string(), response_body.to_string())
    };

    let (head, body) = request("GET", "/healthz", "");
    assert!(head.starts_with("HTTP/1.1 200"), "healthz head: {head}");
    assert_eq!(body, "ok\n");

    let spec_json = serde_json::to_string(&spec).unwrap();
    let (head, body) = request("POST", "/run", &spec_json);
    assert!(head.starts_with("HTTP/1.1 200"), "run head: {head}");
    assert!(head.contains("X-Wx-Run-Us:"), "missing telemetry: {head}");
    assert!(head.contains("X-Wx-Coalesced: false"));
    assert_eq!(body, batch, "HTTP body must be the exact batch bytes");

    // Warm repeat: identical bytes again, now with cache hits.
    let (head, body) = request("POST", "/run", &spec_json);
    assert!(head.starts_with("HTTP/1.1 200"));
    assert_eq!(body, batch);

    let (head, body) = request("GET", "/stats", "");
    assert!(head.starts_with("HTTP/1.1 200"), "stats head: {head}");
    let stats: serde::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(stats.get("executed").and_then(|v| v.as_u64()), Some(2));

    handle.join().unwrap();
}

#[test]
fn http_rejects_bad_routes_and_bodies() {
    let service = Service::start(&ServeConfig::default());
    let server = HttpServer::bind(service, "127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.serve_n(3).unwrap());

    let request = |payload: String| -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(payload.as_bytes()).unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        raw
    };

    let raw = request("GET /nope HTTP/1.1\r\n\r\n".to_string());
    assert!(raw.starts_with("HTTP/1.1 404"), "got: {raw}");

    let raw = request("DELETE /run HTTP/1.1\r\n\r\n".to_string());
    assert!(raw.starts_with("HTTP/1.1 405"), "got: {raw}");

    let body = "{\"name\": \"broken\"}";
    let raw = request(format!(
        "POST /run HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    ));
    assert!(raw.starts_with("HTTP/1.1 400"), "got: {raw}");

    handle.join().unwrap();
}
