//! Building the Theorem 1.2 worst-case expander and watching the wireless
//! expansion collapse.
//!
//! Takes a random regular expander, plugs the generalized core graph on top
//! of it (Section 4.3.3), and compares the planted set's ordinary expansion
//! against its wireless expansion and against the Corollary 4.11 upper
//! bound. For contrast, the same quantities are computed for a typical
//! (non-planted) set of the same size.
//!
//! Run with `cargo run -p wx-examples --bin worst_case_expander [seed]`.

use wx_core::prelude::*;
use wx_core::report::{fmt_f64, render_table, TableRow};
use wx_examples::{section, seed_from_args};

fn main() {
    let seed = seed_from_args(13);

    section("Base expander");
    let base = random_regular_graph(1024, 64, seed).expect("valid");
    let base_beta = 1.0; // conservative certified expansion for α = 1/2
    println!("random 64-regular graph on 1024 vertices; using certified β = {base_beta}");

    section("Plugging the generalized core graph (ε = 0.3)");
    let wce = WorstCaseExpander::plug(&base, base_beta, 0.3).expect("parameter window holds");
    println!(
        "core: |S*| = {}, |N*| = {}, scaling {:?}",
        wce.core.graph.num_left(),
        wce.core.graph.num_right(),
        wce.core.scaling
    );
    println!(
        "combined graph: n = {}, Δ̃ = {}, β̃ = {:.3}",
        wce.graph.num_vertices(),
        wce.delta_tilde(),
        wce.beta_tilde()
    );

    section("Planted set vs. typical set");
    let mut rows = Vec::new();

    // The planted set S*.
    let s_star = &wce.s_star;
    let ordinary = wx_core::graph::neighborhood::expansion_of_set(&wce.graph, s_star);
    let (wireless_lb, upper) = wce.planted_set_wireless_bounds(seed);
    rows.push(TableRow::new(
        "planted S*",
        vec![
            s_star.len().to_string(),
            fmt_f64(ordinary),
            fmt_f64(wireless_lb),
            fmt_f64(upper),
            fmt_f64(wce.wireless_upper_bound()),
        ],
    ));

    // A typical set of the same size inside the base expander.
    let mut rng = wx_core::graph::random::rng_from_seed(seed);
    let typical = wx_core::graph::random::random_subset_of_size(&mut rng, wce.base_n, s_star.len());
    let typical = VertexSet::from_iter(wce.graph.num_vertices(), typical.iter());
    let ordinary_t = wx_core::graph::neighborhood::expansion_of_set(&wce.graph, &typical);
    let portfolio = PortfolioSolver::default();
    let (wireless_t, _) =
        wx_core::expansion::wireless::of_set_lower_bound(&wce.graph, &typical, &portfolio, seed);
    rows.push(TableRow::new(
        "typical set",
        vec![
            typical.len().to_string(),
            fmt_f64(ordinary_t),
            fmt_f64(wireless_t),
            "-".to_string(),
            "-".to_string(),
        ],
    ));

    println!(
        "{}",
        render_table(
            "Expansion of the planted set vs. a typical set",
            &[
                "set",
                "|S|",
                "β(S)",
                "βw(S) certified",
                "βw(S) structural ub",
                "Cor 4.11 ub"
            ],
            &rows
        )
    );
    println!("The planted set keeps a healthy ordinary expansion but its wireless");
    println!("expansion is pinned below the structural bound — the gap Theorem 1.2");
    println!("proves is unavoidable in general.");
}
