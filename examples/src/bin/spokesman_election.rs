//! Spokesman Election solver comparison (the Section 4.2.1 workload).
//!
//! Generates several bipartite instances — random left-regular graphs, the
//! Lemma 3.3 bad-unique gadget, and the Lemma 4.4 core graph — and runs every
//! solver in the crate on each, printing the achieved unique coverage next to
//! the theoretical guarantees. On small instances the exact optimum is also
//! shown.
//!
//! Run with `cargo run -p wx-examples --bin spokesman_election [seed]`.

use wx_core::prelude::*;
use wx_core::report::{fmt_f64, render_table, TableRow};
use wx_examples::{section, seed_from_args};

fn solve_all(name: &str, g: &BipartiteGraph, seed: u64, rows: &mut Vec<TableRow>) {
    let gamma = (0..g.num_right())
        .filter(|&w| g.right_degree(w) > 0)
        .count();
    let delta_n = if gamma > 0 {
        g.num_edges() as f64 / gamma as f64
    } else {
        0.0
    };
    let solvers: Vec<(&str, Box<dyn SpokesmanSolver>)> = vec![
        ("random-decay", Box::new(RandomDecaySolver::default())),
        ("partition", Box::new(PartitionSolver::default())),
        ("greedy", Box::new(GreedyMinDegreeSolver)),
        ("degree-class", Box::new(DegreeClassSolver::default())),
        (
            "chlamtac-weinstein",
            Box::new(ChlamtacWeinsteinSolver::default()),
        ),
    ];
    for (label, solver) in solvers {
        let r = solver.solve(g, seed);
        rows.push(TableRow::new(
            format!("{name}/{label}"),
            vec![
                r.unique_coverage.to_string(),
                fmt_f64(r.coverage_fraction(g)),
                fmt_f64(wx_core::spokesman::bounds::lemma_a_13_guarantee(
                    gamma, delta_n,
                )),
                fmt_f64(wx_core::spokesman::bounds::lemma_a_1_guarantee(
                    gamma,
                    g.max_left_degree(),
                )),
            ],
        ));
    }
    if ExactSolver::is_feasible(g) {
        let r = ExactSolver.solve(g, seed);
        rows.push(TableRow::new(
            format!("{name}/EXACT"),
            vec![
                r.unique_coverage.to_string(),
                fmt_f64(r.coverage_fraction(g)),
                "-".to_string(),
                "-".to_string(),
            ],
        ));
    }
}

fn main() {
    let seed = seed_from_args(11);
    let mut rows = Vec::new();

    section("Instances");
    let random = random_left_regular_bipartite(20, 60, 4, seed).expect("valid");
    println!("random 4-left-regular bipartite: |S| = 20, |N| = 60");
    let gadget = BadUniqueExpander::new(16, 8, 5).expect("valid");
    println!("Lemma 3.3 gadget: s = 16, Δ = 8, β = 5 (unique expansion 2β−Δ = 2)");
    let core = CoreGraph::new(16).expect("valid");
    println!("Lemma 4.4 core graph: s = 16, |N| = {}", core.num_right());

    solve_all("random", &random, seed, &mut rows);
    solve_all("gadget", &gadget.graph, seed, &mut rows);
    solve_all("core16", &core.graph, seed, &mut rows);

    section("Results");
    println!(
        "{}",
        render_table(
            "Spokesman Election — coverage vs. guarantees",
            &[
                "instance/solver",
                "covered",
                "fraction",
                "A.13 bound",
                "A.1 bound"
            ],
            &rows
        )
    );
    println!("All solvers must sit at or above the deterministic guarantees;");
    println!("the decay/partition solvers should clearly beat the Chlamtac–Weinstein");
    println!("baseline on the core graph, whose coverable fraction is only 2/log 2s.");
}
