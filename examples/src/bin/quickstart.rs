//! Quickstart: the paper's motivating example in thirty lines.
//!
//! Builds the `C⁺` graph from the introduction (a clique plus a pendant
//! source), measures its three expansion quantities, and runs the broadcast
//! comparison: naive flooding deadlocks after one round, while the
//! spokesman schedule — the algorithmic face of wireless expansion —
//! finishes in a couple of rounds.
//!
//! Run with `cargo run -p wx-examples --bin quickstart [seed]`.

use wx_core::prelude::*;
use wx_examples::{section, seed_from_args};

fn main() {
    let seed = seed_from_args(7);

    section("C⁺ — the motivating example");
    let (graph, source) = complete_plus_graph(10).expect("valid parameters");
    println!(
        "clique of 10 + source: n = {}, m = {}, Δ = {}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree()
    );

    section("Expansion profile (exact for this size)");
    let analysis = GraphAnalysis::run(
        &graph,
        &AnalysisConfig::builder()
            .broadcast_source(Some(source))
            .seed(seed)
            .build(),
    );
    println!("{}", analysis.summary());
    println!(
        "unique expansion collapses to {:.3} while wireless expansion stays at {:.3}",
        analysis.profile.unique.value, analysis.profile.wireless.value
    );

    section("Backends: the same engine on an unmaterialized hypercube");
    // Every entry point above is generic over `GraphView`; the implicit
    // backend computes neighborhoods from the family rule, so nothing here
    // materializes Q_12's 24k edges.
    let q12 = ImplicitGraph::hypercube(12).expect("valid dimension");
    let engine = MeasurementEngine::builder()
        .alpha(0.5)
        .strategy(MeasureStrategy::Sampled)
        .sampler(SamplerConfig::light(0.5))
        .seed(seed)
        .build();
    let beta = engine.measure(&q12, &Ordinary).expect("non-empty graph");
    println!(
        "implicit Q_12: n = {}, Δ = {}, sampled β ≈ {:.3} (witness |S| = {})",
        GraphView::num_vertices(&q12),
        GraphView::max_degree(&q12),
        beta.value,
        beta.witness.len()
    );

    section("Broadcast race from the pendant source");
    let b = analysis.broadcast.expect("broadcast comparison enabled");
    println!(
        "naive flooding     : {}",
        wx_core::report::fmt_opt(b.naive_flooding)
    );
    println!("decay protocol     : {}", wx_core::report::fmt_opt(b.decay));
    println!(
        "spokesman schedule : {}",
        wx_core::report::fmt_opt(b.spokesman)
    );
    println!();
    println!("(naive flooding '-' means it never completed: after the first round");
    println!(" the informed set {{source, x, y}} has no unique neighbors, exactly the");
    println!(" failure mode wireless expanders are designed to avoid.)");
}
