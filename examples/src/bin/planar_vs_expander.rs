//! Low-arboricity graphs keep their expansion wireless; core graphs don't.
//!
//! The arboricity corollary of Theorem 1.1 says the wireless loss factor is
//! `O(log(2·min{Δ/β, Δ·β}))`, which is `O(1)` for planar / bounded-arboricity
//! graphs. This example measures the ratio `β̂/β̂w` on grids, tori and trees
//! (arboricity ≤ 3) and on the core-graph family (where the loss grows like
//! `log s`), printing them side by side.
//!
//! Run with `cargo run -p wx-examples --bin planar_vs_expander [seed]`.

use wx_core::prelude::*;
use wx_core::report::{fmt_f64, render_table, TableRow};
use wx_examples::{section, seed_from_args};

fn profile_row(name: &str, g: &Graph, rows: &mut Vec<TableRow>) {
    let cfg = ProfileConfig::light(0.5);
    let p = ExpansionProfile::measure(g, &cfg);
    let arb = &p.arboricity;
    rows.push(TableRow::new(
        name,
        vec![
            g.num_vertices().to_string(),
            arb.upper.to_string(),
            fmt_f64(p.ordinary.value),
            fmt_f64(p.wireless.value),
            fmt_f64(p.wireless_loss),
            fmt_f64(p.theorem_1_1_reference),
        ],
    ));
}

fn core_row(s: usize, rows: &mut Vec<TableRow>) {
    // For the core graph we measure the *planted* set S directly (it is the
    // worst set by design): ordinary expansion log 2s, wireless ≤ 2s/|S|·…
    let core = CoreGraph::new(s).expect("power of two");
    let g = core.graph.to_graph();
    let s_set = VertexSet::from_iter(g.num_vertices(), 0..s);
    let beta = wx_core::graph::neighborhood::expansion_of_set(&g, &s_set);
    let portfolio = PortfolioSolver::default();
    let (beta_w, _) = wx_core::expansion::wireless::of_set_lower_bound(&g, &s_set, &portfolio, 5);
    let arb = wx_core::graph::arboricity::arboricity_bounds(&g);
    rows.push(TableRow::new(
        format!("core-{s}"),
        vec![
            g.num_vertices().to_string(),
            arb.upper.to_string(),
            fmt_f64(beta),
            fmt_f64(beta_w),
            fmt_f64(if beta_w > 0.0 {
                beta / beta_w
            } else {
                f64::INFINITY
            }),
            fmt_f64(wx_core::spokesman::bounds::theorem_1_1_lower_bound(
                g.max_degree(),
                beta,
            )),
        ],
    ));
}

fn main() {
    let seed = seed_from_args(5);
    let mut rows = Vec::new();

    section("Low-arboricity family");
    profile_row("grid-12x12", &grid_graph(12, 12).unwrap(), &mut rows);
    profile_row("torus-10x10", &torus_graph(10, 10).unwrap(), &mut rows);
    profile_row(
        "binary-tree-127",
        &complete_k_ary_tree(2, 7).unwrap(),
        &mut rows,
    );
    profile_row(
        "random-tree-100",
        &random_tree(100, seed).unwrap(),
        &mut rows,
    );

    section("Core-graph family (the paper's bad example)");
    for s in [8usize, 16, 32, 64] {
        core_row(s, &mut rows);
    }

    println!(
        "{}",
        render_table(
            "Wireless loss β/βw: bounded for low arboricity, growing for core graphs",
            &[
                "graph",
                "n",
                "arboricity ub",
                "β̂",
                "β̂w",
                "loss β̂/β̂w",
                "thm 1.1 ref"
            ],
            &rows
        )
    );
    println!("Expected shape: the loss column stays ≈ 1–2 for the planar/tree rows");
    println!("and grows roughly like log₂(2s) down the core-graph rows.");
}
