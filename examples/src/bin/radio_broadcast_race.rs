//! Broadcast protocols racing on different topologies.
//!
//! Runs naive flooding, round-robin, decay and the spokesman schedule on a
//! random regular expander, a grid, a complete binary tree and the Section-5
//! broadcast chain, printing completion rounds. The chain is where the
//! `Ω(D·log(n/D))` lower bound bites: even the centralized spokesman
//! schedule pays ≈ log(n/D) rounds per hop.
//!
//! Run with `cargo run -p wx-examples --bin radio_broadcast_race [seed]`.

use wx_core::prelude::*;
use wx_core::report::{fmt_opt, render_table, TableRow};
use wx_examples::{section, seed_from_args};

fn race(name: &str, graph: &Graph, source: Vertex, seed: u64, rows: &mut Vec<TableRow>) {
    let cfg = SimulatorConfig {
        max_rounds: 20_000,
        stop_when_complete: true,
    };
    let sim = RadioSimulator::new(graph, source, cfg);
    let naive = sim.run(&mut NaiveFlooding, seed).completed_at;
    let rr = sim.run(&mut RoundRobin::default(), seed).completed_at;
    let decay = sim.run(&mut DecayProtocol::default(), seed).completed_at;
    let spk = sim
        .run(&mut SpokesmanBroadcast::default(), seed)
        .completed_at;
    rows.push(TableRow::new(
        name,
        vec![
            graph.num_vertices().to_string(),
            fmt_opt(naive),
            fmt_opt(rr),
            fmt_opt(decay),
            fmt_opt(spk),
        ],
    ));
}

fn main() {
    let seed = seed_from_args(3);
    let mut rows = Vec::new();

    section("Building topologies");
    let expander = random_regular_graph(256, 6, seed).expect("valid");
    println!("random 6-regular expander on 256 vertices");
    let grid = grid_graph(16, 16).expect("valid");
    println!("16×16 grid (planar, low arboricity)");
    let tree = complete_k_ary_tree(2, 8).expect("valid");
    println!("complete binary tree with 8 levels");
    let chain = BroadcastChain::new(16, 4, seed).expect("valid");
    println!(
        "Section-5 chain: 4 stages of core graphs with s = 16 ({} vertices, reference lower bound {:.1} rounds)",
        chain.num_vertices(),
        chain.reference_lower_bound()
    );

    section("Race");
    race("expander-256", &expander, 0, seed, &mut rows);
    race("grid-16x16", &grid, 0, seed, &mut rows);
    race("binary-tree-255", &tree, 0, seed, &mut rows);
    race("chain-s16-d4", &chain.graph, chain.root, seed, &mut rows);

    println!(
        "{}",
        render_table(
            "Broadcast completion rounds ('-' = did not complete in 20k rounds)",
            &[
                "topology",
                "n",
                "naive",
                "round-robin",
                "decay",
                "spokesman"
            ],
            &rows
        )
    );

    section("Per-relay timings on the chain (Section 5)");
    let exp = wx_core::radio::lower_bound::ChainExperiment::new(
        &chain,
        SimulatorConfig {
            max_rounds: 20_000,
            stop_when_complete: true,
        },
    );
    let run = exp.run(&mut SpokesmanBroadcast::default(), seed);
    println!("relay informed at rounds: {:?}", run.relay_rounds);
    println!(
        "mean per-stage gap {:.1} rounds vs log2(2s) = {:.1}",
        run.mean_gap().unwrap_or(f64::NAN),
        ((16f64).log2() + 1.0)
    );
}
