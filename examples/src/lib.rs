//! Shared helpers for the example binaries.
//!
//! The examples are the "how would a downstream user actually drive this
//! library" layer: each binary exercises the public API of `wx-core` on a
//! self-contained scenario and prints a small, readable report. This library
//! crate only hosts the tiny bits of shared plumbing (argument parsing for a
//! seed, section headers) so that each example file stays focused on its
//! scenario.

/// Reads an optional `u64` seed from the first CLI argument, defaulting to
/// the given value. Any unparsable argument falls back to the default.
pub fn seed_from_args(default: u64) -> u64 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Prints a prominent section header.
pub fn section(title: &str) {
    println!();
    println!("=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_defaults_when_no_args() {
        // In the test harness there are extra args, but they are not valid
        // u64 seeds, so the default must come back.
        assert_eq!(seed_from_args(42), 42);
    }
}
