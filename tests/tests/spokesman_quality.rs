//! Cross-solver quality checks for the Spokesman Election portfolio
//! (Section 4.2.1 / Appendix A): every solver respects its guarantee, no
//! polynomial-time solver beats the exact optimum, and the paper's solvers
//! dominate the Chlamtac–Weinstein baseline where they should.

use proptest::prelude::*;
use wx_integration_tests::random_bipartite;
use wx_spokesman::bounds;
use wx_spokesman::{
    ChlamtacWeinsteinSolver, DegreeClassSolver, ExactSolver, GreedyMinDegreeSolver,
    PartitionSolver, PortfolioSolver, RandomDecaySolver, SpokesmanSolver,
};

fn solvers() -> Vec<Box<dyn SpokesmanSolver>> {
    vec![
        Box::new(RandomDecaySolver::default()),
        Box::new(PartitionSolver::default()),
        Box::new(PartitionSolver::low_degree_once()),
        Box::new(GreedyMinDegreeSolver),
        Box::new(DegreeClassSolver::default()),
        Box::new(ChlamtacWeinsteinSolver::default()),
        Box::new(PortfolioSolver::default()),
    ]
}

#[test]
fn no_solver_beats_the_exact_optimum_on_small_instances() {
    for seed in 0..15u64 {
        let g = random_bipartite(9, 16, 0.3, seed);
        let (opt, _) = ExactSolver::optimum(&g);
        for solver in solvers() {
            let r = solver.solve(&g, seed);
            assert!(
                r.unique_coverage <= opt,
                "seed {seed}: {} reported {} > optimum {opt}",
                solver.kind(),
                r.unique_coverage
            );
            // the reported coverage must be honest: recompute from the subset
            assert_eq!(r.unique_coverage, g.unique_coverage(&r.subset));
            assert!(r.subset.iter().all(|u| u < g.num_left()));
        }
    }
}

#[test]
fn portfolio_matches_the_best_member_and_often_the_optimum() {
    let mut optimal_hits = 0usize;
    let trials = 12u64;
    for seed in 0..trials {
        let g = random_bipartite(10, 20, 0.35, 100 + seed);
        let (opt, _) = ExactSolver::optimum(&g);
        let portfolio = PortfolioSolver::default();
        let best_member = portfolio
            .solve_all(&g, seed)
            .into_iter()
            .map(|r| r.unique_coverage)
            .max()
            .unwrap_or(0);
        let combined = portfolio.solve(&g, seed).unique_coverage;
        assert_eq!(combined, best_member);
        if combined == opt {
            optimal_hits += 1;
        }
    }
    // The portfolio should find the true optimum on most small instances.
    assert!(
        optimal_hits as f64 >= 0.5 * trials as f64,
        "portfolio matched the optimum only {optimal_hits}/{trials} times"
    );
}

#[test]
fn deterministic_guarantees_hold_on_structured_instances() {
    // Core graph, bad-unique gadget, skewed instances: the Appendix A solvers
    // must meet their stated bounds on all of them.
    let instances: Vec<(&str, wx_graph::BipartiteGraph)> = vec![
        (
            "core-32",
            wx_constructions::CoreGraph::new(32).unwrap().graph,
        ),
        (
            "gadget-24-8-5",
            wx_constructions::BadUniqueExpander::new(24, 8, 5)
                .unwrap()
                .graph,
        ),
        (
            "random-left-regular",
            wx_constructions::families::random_left_regular_bipartite(30, 60, 6, 3).unwrap(),
        ),
    ];
    for (name, g) in instances {
        let gamma = (0..g.num_right())
            .filter(|&w| g.right_degree(w) > 0)
            .count();
        let delta_n = g.num_edges() as f64 / gamma.max(1) as f64;

        let partition = PartitionSolver::default().solve(&g, 1);
        assert!(
            partition.unique_coverage as f64
                >= bounds::lemma_a_13_guarantee(gamma, delta_n).floor(),
            "{name}: partition below Lemma A.13"
        );

        let greedy = GreedyMinDegreeSolver.solve(&g, 1);
        assert!(
            greedy.unique_coverage as f64
                >= bounds::lemma_a_1_guarantee(gamma, g.max_left_degree()).floor(),
            "{name}: greedy below Lemma A.1"
        );

        let low_degree = PartitionSolver::low_degree_once().solve(&g, 1);
        assert!(
            low_degree.unique_coverage as f64
                >= bounds::lemma_a_3_guarantee(gamma, delta_n).floor(),
            "{name}: single-pass partition below Lemma A.3"
        );

        let cw = ChlamtacWeinsteinSolver::default().solve(&g, 1);
        assert!(
            cw.unique_coverage as f64 >= ChlamtacWeinsteinSolver::guarantee(&g).floor() * 0.99,
            "{name}: baseline below |N|/log|S|"
        );
    }
}

#[test]
fn paper_solvers_dominate_the_baseline_on_low_degree_wide_instances() {
    // The whole point of Section 4.2.1: when |S| is large but the average
    // degree is small, the paper's bound |N|/log(2δ) is much stronger than
    // the baseline's |N|/log|S|. On such instances the portfolio should
    // cover at least as much as the baseline actually achieves.
    for seed in 0..5u64 {
        let g =
            wx_constructions::families::random_left_regular_bipartite(200, 400, 2, seed).unwrap();
        let portfolio = PortfolioSolver::default().solve(&g, seed).unique_coverage;
        let baseline = ChlamtacWeinsteinSolver::default()
            .solve(&g, seed)
            .unique_coverage;
        // Both solvers are randomized (and the portfolio re-seeds its members
        // internally), so allow a small noise margin rather than demanding
        // strict dominance on every seed.
        assert!(
            portfolio as f64 >= 0.9 * baseline as f64,
            "seed {seed}: portfolio {portfolio} well below baseline {baseline}"
        );
        // and the paper's loss factor log(2δ_N) is genuinely smaller than the
        // baseline's log|S| on this wide, sparse instance (the constants in
        // the explicit guarantees differ, so we compare the loss factors —
        // which is what Section 4.2.1 claims).
        let gamma = (0..g.num_right())
            .filter(|&w| g.right_degree(w) > 0)
            .count();
        let delta_n = g.num_edges() as f64 / gamma as f64;
        assert!((2.0 * delta_n).log2() < (g.num_left() as f64).log2());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Solver outputs are always valid subsets with honestly reported
    /// coverage, for arbitrary random instances.
    #[test]
    fn solver_outputs_are_valid(seed in 0u64..10_000, s in 1usize..14, n in 1usize..24, p in 0.05f64..0.7) {
        let g = random_bipartite(s, n, p, seed);
        for solver in solvers() {
            let r = solver.solve(&g, seed);
            prop_assert!(r.subset_size == r.subset.len());
            prop_assert!(r.subset.iter().all(|u| u < s));
            prop_assert_eq!(r.unique_coverage, g.unique_coverage(&r.subset));
            prop_assert!(r.unique_coverage <= n);
        }
    }
}
