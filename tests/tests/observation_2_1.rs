//! Observation 2.1: `β(S) ≥ βw(S) ≥ βu(S)` for every set, and the same
//! sandwich for the graph-level minima.

use proptest::prelude::*;
use wx_expansion::sampling::{CandidateSets, SamplerConfig};
use wx_graph::VertexSet;
use wx_integration_tests::{random_graph, small_test_graphs};

#[test]
fn sandwich_holds_per_set_on_the_small_battery() {
    for (name, g) in small_test_graphs() {
        let pool = CandidateSets::generate(&g, &SamplerConfig::default(), 1);
        for s in pool.sets.iter().filter(|s| s.len() <= 10) {
            let beta = wx_expansion::ordinary::of_set(&g, s);
            let (beta_w, _) = wx_expansion::wireless::of_set_exact(&g, s);
            let beta_u = wx_expansion::unique::of_set(&g, s);
            assert!(
                beta + 1e-9 >= beta_w && beta_w + 1e-9 >= beta_u,
                "{name}: sandwich violated on {s:?}: β={beta} βw={beta_w} βu={beta_u}"
            );
        }
    }
}

#[test]
fn sandwich_holds_for_graph_level_minima_small_graphs() {
    for (name, g) in small_test_graphs() {
        if g.num_vertices() > 12 {
            continue;
        }
        let engine = wx_expansion::MeasurementEngine::builder()
            .alpha(0.5)
            .strategy(wx_expansion::MeasureStrategy::Exact)
            .build();
        let triple = engine
            .measure_all(&g, &wx_expansion::Wireless::default())
            .unwrap();
        let (beta, beta_w, beta_u) = (
            triple.ordinary.value,
            triple.wireless.value,
            triple.unique.value,
        );
        assert!(
            beta + 1e-9 >= beta_w && beta_w + 1e-9 >= beta_u,
            "{name}: graph-level sandwich violated: β={beta} βw={beta_w} βu={beta_u}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random graphs, random sets: the sandwich and basic monotonicity of the
    /// unique coverage under the exact spokesman optimum.
    #[test]
    fn sandwich_on_random_graphs(seed in 0u64..1000, n in 5usize..11, p in 0.15f64..0.6) {
        let g = random_graph(n, p, seed);
        let mut rng = wx_graph::random::rng_from_seed(seed ^ 0xFFFF);
        for k in 1..=(n / 2).max(1) {
            let s = wx_graph::random::random_subset_of_size(&mut rng, n, k);
            let beta = wx_expansion::ordinary::of_set(&g, &s);
            let (beta_w, witness) = wx_expansion::wireless::of_set_exact(&g, &s);
            let beta_u = wx_expansion::unique::of_set(&g, &s);
            prop_assert!(beta + 1e-9 >= beta_w);
            prop_assert!(beta_w + 1e-9 >= beta_u);
            // the witness transmitter set is a subset of S
            prop_assert!(witness.is_subset_of(&s));
        }
    }

    /// The wireless expansion of a set never exceeds |Γ⁻(S)|/|S| and is
    /// achieved by some subset, never by the empty one when Γ⁻(S) ≠ ∅.
    #[test]
    fn wireless_of_set_is_well_defined(seed in 0u64..500, n in 4usize..10) {
        let g = random_graph(n, 0.4, seed);
        let s: VertexSet = g.vertex_set(0..(n / 2).max(1));
        let boundary = wx_graph::neighborhood::external_neighborhood(&g, &s);
        let (bw, witness) = wx_expansion::wireless::of_set_exact(&g, &s);
        prop_assert!(bw <= boundary.len() as f64 / s.len() as f64 + 1e-9);
        if !boundary.is_empty() {
            prop_assert!(bw > 0.0);
            prop_assert!(!witness.is_empty());
        } else {
            prop_assert_eq!(bw, 0.0);
        }
    }
}
