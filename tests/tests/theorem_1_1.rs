//! Theorem 1.1 (the positive result): every `(α, β)`-expander is an
//! `(α, Ω(β/log(2·min{Δ/β, Δβ})))`-wireless expander.
//!
//! We verify the statement set-by-set: for every candidate set `S`, the
//! certified wireless expansion of `S` (exact on small sets, portfolio lower
//! bound on larger ones) clears `c·β(S)/log₂(2·min{Δ/β(S), Δ·β(S)})`. The
//! exact mode uses the paper-shaped constant `c = 1`; the portfolio mode uses
//! `c = 1/2` since it only lower-bounds the inner maximum.

use wx_expansion::relations::{theorem_1_1_for_set, theorem_1_1_for_set_via_portfolio};
use wx_expansion::sampling::{CandidateSets, SamplerConfig};
use wx_integration_tests::small_test_graphs;

#[test]
fn exact_check_on_the_small_battery() {
    for (name, g) in small_test_graphs() {
        let pool = CandidateSets::generate(&g, &SamplerConfig::default(), 7);
        for s in pool.sets.iter().filter(|s| s.len() <= 12) {
            // Theorem 1.1 is an Ω(·) statement; on tiny sets the hidden
            // constant matters (e.g. two vertices at distance 2 on a cycle
            // give βw·log(2·min{Δ/β, Δβ})/β ≈ 0.94), so we check the shape
            // with a conservative constant of 1/2.
            let check = theorem_1_1_for_set(&g, s, 0.5);
            assert!(
                check.holds,
                "{name}: Theorem 1.1 violated on a set of size {}: lhs {} rhs {}",
                s.len(),
                check.lhs,
                check.rhs
            );
        }
    }
}

#[test]
fn portfolio_check_on_expander_families() {
    let graphs: Vec<(&str, wx_graph::Graph)> = vec![
        (
            "random-regular-128-6",
            wx_constructions::families::random_regular_graph(128, 6, 3).unwrap(),
        ),
        (
            "random-regular-200-10",
            wx_constructions::families::random_regular_graph(200, 10, 5).unwrap(),
        ),
        (
            "hypercube-7",
            wx_constructions::families::hypercube_graph(7).unwrap(),
        ),
        (
            "margulis-10",
            wx_constructions::families::margulis_graph(10).unwrap(),
        ),
    ];
    for (name, g) in graphs {
        let pool = CandidateSets::generate(&g, &SamplerConfig::light(0.5), 11);
        for (i, s) in pool.sets.iter().enumerate().filter(|(_, s)| s.len() >= 2) {
            let check = theorem_1_1_for_set_via_portfolio(&g, s, 0.35, i as u64);
            assert!(
                check.holds,
                "{name}: Theorem 1.1 (portfolio, c = 0.35) violated on a set of size {}: lhs {} rhs {}",
                s.len(),
                check.lhs,
                check.rhs
            );
        }
    }
}

#[test]
fn arboricity_corollary_grids_and_trees_lose_only_a_constant() {
    // For planar / tree instances min{Δ/β, Δβ} is O(1) for the worst sets,
    // so βw ≥ β/c for a small constant c. We check the measured graph-level
    // ratio is below 4.
    let graphs: Vec<(&str, wx_graph::Graph)> = vec![
        (
            "grid-10x10",
            wx_constructions::families::grid_graph(10, 10).unwrap(),
        ),
        (
            "torus-8x8",
            wx_constructions::families::torus_graph(8, 8).unwrap(),
        ),
        (
            "binary-tree-63",
            wx_constructions::families::complete_k_ary_tree(2, 6).unwrap(),
        ),
    ];
    for (name, g) in graphs {
        let profile = wx_expansion::profile::ExpansionProfile::measure(
            &g,
            &wx_expansion::profile::ProfileConfig::light(0.5),
        );
        assert!(
            profile.wireless_loss < 4.0,
            "{name}: wireless loss {} too large for a low-arboricity graph",
            profile.wireless_loss
        );
    }
}

#[test]
fn lemma_4_2_and_4_3_bounds_hold_on_bipartite_views() {
    // Directly on bipartite instances: the best solver result must clear the
    // Lemma 4.2/4.3 guarantee evaluated with the measured average degrees.
    use wx_spokesman::{PortfolioSolver, SpokesmanSolver};
    for seed in 0..5u64 {
        let g = wx_constructions::families::random_left_regular_bipartite(24, 48, 5, seed).unwrap();
        let result = PortfolioSolver::default().solve(&g, seed);
        let gamma = (0..g.num_right())
            .filter(|&w| g.right_degree(w) > 0)
            .count();
        let delta_n = g.num_edges() as f64 / gamma as f64;
        // Lemma 4.2 guarantee with the e^{-3} constant made explicit and a
        // further factor-2 safety margin for the bucketing loss.
        let guarantee = (gamma as f64 * (-3.0f64).exp()) / (2.0 * (2.0 * delta_n).log2().max(1.0));
        assert!(
            result.unique_coverage as f64 >= guarantee.floor(),
            "seed {seed}: coverage {} below Lemma 4.2 floor {guarantee}",
            result.unique_coverage
        );
    }
}
