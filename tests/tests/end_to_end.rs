//! End-to-end pipeline tests: the facade analysis on every graph family,
//! serde round-trips of the report types, and reproducibility of the whole
//! stack under a fixed seed.

use wx_core::prelude::*;

#[test]
fn analysis_runs_on_every_family_and_observation_2_1_always_holds() {
    let graphs: Vec<(&str, Graph)> = vec![
        ("c-plus", complete_plus_graph(8).unwrap().0),
        ("random-regular", random_regular_graph(80, 4, 1).unwrap()),
        ("hypercube", hypercube_graph(5).unwrap()),
        ("margulis", margulis_graph(6).unwrap()),
        ("grid", grid_graph(7, 7).unwrap()),
        ("torus", torus_graph(5, 5).unwrap()),
        ("tree", complete_k_ary_tree(3, 4).unwrap()),
        ("random-tree", random_tree(60, 2).unwrap()),
        ("core-graph-8", CoreGraph::new(8).unwrap().graph.to_graph()),
        (
            "bad-unique",
            BadUniqueExpander::new(12, 6, 4).unwrap().graph.to_graph(),
        ),
        (
            "broadcast-chain",
            BroadcastChain::new(4, 2, 3).unwrap().graph,
        ),
    ];
    for (name, g) in graphs {
        let analysis = GraphAnalysis::run(&g, &AnalysisConfig::light());
        assert!(
            analysis.observation_2_1_holds,
            "{name}: Observation 2.1 violated: {}",
            analysis.summary()
        );
        assert!(
            analysis.profile.wireless.value >= 0.0 && analysis.profile.ordinary.value.is_finite(),
            "{name}: nonsensical profile {}",
            analysis.summary()
        );
    }
}

#[test]
fn analysis_is_reproducible_for_a_fixed_seed() {
    let g = random_regular_graph(60, 4, 5).unwrap();
    let cfg = AnalysisConfig::light();
    let a = GraphAnalysis::run(&g, &cfg);
    let b = GraphAnalysis::run(&g, &cfg);
    assert_eq!(a.profile.ordinary.value, b.profile.ordinary.value);
    assert_eq!(a.profile.unique.value, b.profile.unique.value);
    assert_eq!(a.profile.wireless.value, b.profile.wireless.value);
}

#[test]
fn analysis_json_roundtrips() {
    let (g, _) = complete_plus_graph(6).unwrap();
    let a = GraphAnalysis::run(&g, &AnalysisConfig::default());
    let json = a.to_json();
    let back: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(back["profile"]["num_vertices"], 7);
    assert!(back["observation_2_1_holds"].as_bool().unwrap());
}

#[test]
fn report_tables_render_for_experiment_style_rows() {
    use wx_core::report::{fmt_f64, render_table, TableRow};
    let graphs = [
        ("grid-5x5", grid_graph(5, 5).unwrap()),
        ("hypercube-4", hypercube_graph(4).unwrap()),
    ];
    let mut rows = Vec::new();
    for (name, g) in &graphs {
        let p = ExpansionProfile::measure(g, &ProfileConfig::light(0.5));
        rows.push(TableRow::new(
            *name,
            vec![fmt_f64(p.ordinary.value), fmt_f64(p.wireless.value)],
        ));
    }
    let table = render_table("demo", &["graph", "beta", "beta_w"], &rows);
    assert!(table.contains("grid-5x5"));
    assert!(table.contains("hypercube-4"));
    assert_eq!(table.lines().count(), 5);
}

#[test]
fn graph_serde_roundtrip_preserves_structure() {
    let g = margulis_graph(5).unwrap();
    let json = serde_json::to_string(&g).unwrap();
    let back: Graph = serde_json::from_str(&json).unwrap();
    assert_eq!(g, back);

    let core = CoreGraph::new(8).unwrap();
    let json = serde_json::to_string(&core).unwrap();
    let back: CoreGraph = serde_json::from_str(&json).unwrap();
    assert_eq!(core.graph, back.graph);
    assert_eq!(core.s, back.s);

    let vs = VertexSet::from_iter(10, [1, 4, 7]);
    let json = serde_json::to_string(&vs).unwrap();
    let back: VertexSet = serde_json::from_str(&json).unwrap();
    assert_eq!(vs, back);
    // malformed member is rejected
    assert!(serde_json::from_str::<VertexSet>(r#"{"universe":3,"members":[5]}"#).is_err());
}

#[test]
fn petgraph_interop_through_the_facade() {
    let g = grid_graph(4, 4).unwrap();
    let pg = wx_core::graph::petgraph_compat::to_petgraph(&g);
    let back = wx_core::graph::petgraph_compat::from_petgraph(&pg);
    assert_eq!(g, back);
}
