//! Section 3: relations between ordinary and unique-neighbor expansion
//! (Lemmas 3.1–3.3) and the spectral machinery behind them.

use wx_constructions::BadUniqueExpander;
use wx_expansion::relations::{lemma_3_1_graph, lemma_3_2_for_set};
use wx_expansion::sampling::{CandidateSets, SamplerConfig};
use wx_integration_tests::small_test_graphs;

#[test]
fn lemma_3_2_holds_on_every_sampled_set_of_the_battery() {
    for (name, g) in small_test_graphs() {
        let pool = CandidateSets::generate(&g, &SamplerConfig::default(), 3);
        for s in &pool.sets {
            let check = lemma_3_2_for_set(&g, s);
            assert!(check.holds, "{name}: Lemma 3.2 violated: {check:?}");
        }
    }
}

#[test]
fn lemma_3_1_spectral_bound_on_regular_graphs() {
    let graphs: Vec<(&str, wx_graph::Graph, f64)> = vec![
        (
            "petersen",
            small_test_graphs().swap_remove(0).1,
            0.2, // αu: sets of ≤ 2 vertices
        ),
        (
            "hypercube-4",
            wx_constructions::families::hypercube_graph(4).unwrap(),
            0.25,
        ),
        (
            "cycle-12",
            wx_graph::Graph::from_edges(12, (0..12).map(|i| (i, (i + 1) % 12))).unwrap(),
            0.25,
        ),
    ];
    for (name, g, alpha_u) in graphs {
        if g.num_vertices() > 16 {
            continue;
        }
        let engine = wx_expansion::MeasurementEngine::builder()
            .alpha(alpha_u)
            .strategy(wx_expansion::MeasureStrategy::Exact)
            .build();
        let beta_u = engine
            .measure(&g, &wx_expansion::UniqueNeighbor)
            .unwrap()
            .value;
        let beta = engine.measure(&g, &wx_expansion::Ordinary).unwrap().value;
        let check = lemma_3_1_graph(&g, alpha_u, beta_u, beta, 1)
            .unwrap_or_else(|| panic!("{name} should be regular"));
        assert!(check.holds, "{name}: Lemma 3.1 violated: {check:?}");
    }
}

#[test]
fn lemma_3_3_gadget_is_tight_for_unique_expansion() {
    // βu(G_bad) = 2β − Δ exactly, over the full range Δ/2 ≤ β ≤ Δ.
    for (delta, beta) in [(8usize, 4usize), (8, 5), (8, 6), (8, 7), (8, 8), (12, 7)] {
        let s = 3 * delta; // comfortably large cycle
        let gadget = BadUniqueExpander::new(s, delta, beta).unwrap();
        let measured = gadget.unique_expansion_of_full_set();
        assert!(
            (measured - (2 * beta - delta) as f64).abs() < 1e-9,
            "Δ={delta}, β={beta}: measured βu = {measured}, expected {}",
            2 * beta - delta
        );
        // Lemma 3.2's lower bound 2β − Δ is therefore met with equality.
        // And the wireless expansion is at least max{2β − Δ, Δ/2} (Remark 1):
        let cert = gadget.alternating_certificate().max(measured);
        assert!(
            cert + 1e-9 >= ((2 * beta) as f64 - delta as f64).max(delta as f64 / 2.0),
            "Δ={delta}, β={beta}: wireless certificate {cert} below Remark-1 bound"
        );
    }
}

#[test]
fn spectral_eigenvalues_match_closed_forms() {
    // complete graph: λ₂ = −1; complete bipartite K_{4,4}: λ₂ = 0;
    // cycle C_n: λ₂ = 2cos(2π/n). These pin the spectral module used by
    // Lemma 3.1 to known values.
    let mut b = wx_graph::GraphBuilder::new(8);
    for i in 0..8 {
        for j in (i + 1)..8 {
            b.add_edge(i, j).unwrap();
        }
    }
    let complete = b.build();
    assert!((wx_expansion::spectral::second_eigenvalue(&complete, 0) + 1.0).abs() < 1e-6);

    let mut b = wx_graph::GraphBuilder::new(8);
    for i in 0..4 {
        for j in 4..8 {
            b.add_edge(i, j).unwrap();
        }
    }
    let k44 = b.build();
    assert!(wx_expansion::spectral::second_eigenvalue(&k44, 0).abs() < 1e-6);

    let cycle = wx_graph::Graph::from_edges(10, (0..10).map(|i| (i, (i + 1) % 10))).unwrap();
    let expected = 2.0 * (2.0 * std::f64::consts::PI / 10.0).cos();
    assert!((wx_expansion::spectral::second_eigenvalue(&cycle, 0) - expected).abs() < 1e-6);
}
