//! Theorem 1.2 (the negative result): the explicit constructions really do
//! have wireless expansion smaller than their ordinary expansion by the
//! logarithmic factor.

use wx_constructions::{CoreGraph, GeneralizedCoreGraph, WorstCaseExpander};
use wx_graph::VertexSet;
use wx_spokesman::{ExactSolver, PortfolioSolver, SpokesmanSolver};

#[test]
fn core_graph_wireless_coverage_is_capped_at_2s() {
    // Lemma 4.4(5): no subset of S uniquely covers more than 2s vertices.
    // Check exactly (exhaustively) for s = 4 and 8, and via strong heuristics
    // plus random subsets for larger s.
    for s in [4usize, 8] {
        let core = CoreGraph::new(s).unwrap();
        let (opt, _) = ExactSolver::optimum(&core.graph);
        assert!(opt <= 2 * s, "s = {s}: exact optimum {opt} exceeds 2s");
    }
    for s in [16usize, 32, 64, 128] {
        let core = CoreGraph::new(s).unwrap();
        let res = PortfolioSolver::default().solve(&core.graph, 3);
        assert!(
            res.unique_coverage <= 2 * s,
            "s = {s}: portfolio coverage {} exceeds 2s",
            res.unique_coverage
        );
        // random subsets as well
        let mut rng = wx_graph::random::rng_from_seed(s as u64);
        for _ in 0..50 {
            use rand::Rng;
            let k = rng.gen_range(1..=s);
            let subset = wx_graph::random::random_subset_of_size(&mut rng, s, k);
            assert!(core.graph.unique_coverage(&subset) <= 2 * s);
        }
    }
}

#[test]
fn core_graph_ordinary_expansion_is_at_least_log_2s() {
    for s in [8usize, 32, 128] {
        let core = CoreGraph::new(s).unwrap();
        let log2s = (core.levels + 1) as f64;
        let mut rng = wx_graph::random::rng_from_seed(7);
        for _ in 0..60 {
            use rand::Rng;
            let k = rng.gen_range(1..=s);
            let subset = wx_graph::random::random_subset_of_size(&mut rng, s, k);
            let neigh = core.graph.neighborhood_of_left_subset(&subset).len() as f64;
            assert!(
                neigh + 1e-9 >= log2s * k as f64,
                "s = {s}, |S'| = {k}: Γ = {neigh} < log(2s)·|S'|"
            );
        }
    }
}

#[test]
fn the_wireless_loss_of_the_core_graph_grows_logarithmically() {
    // The defining gap: coverage fraction ≤ 2/log(2s), so the ratio between
    // ordinary expansion (≥ log 2s) and the wireless expansion of the full
    // set S grows at least linearly in log 2s (up to the constant 2).
    let mut prev_loss = 0.0f64;
    for s in [8usize, 32, 128] {
        let core = CoreGraph::new(s).unwrap();
        let log2s = (core.levels + 1) as f64;
        let res = PortfolioSolver::default().solve(&core.graph, 1);
        let beta_w_of_s = res.unique_coverage as f64 / s as f64; // certified
        let upper_beta_w = 2.0 * s as f64 / s as f64; // structural cap: 2
        let beta_of_s = core.graph.num_right() as f64 / s as f64; // = log 2s
        let loss_lower = beta_of_s / upper_beta_w; // ≥ log(2s)/2
        assert!(loss_lower >= log2s / 2.0 - 1e-9);
        assert!(beta_w_of_s <= upper_beta_w + 1e-9);
        assert!(loss_lower > prev_loss, "loss must grow with s");
        prev_loss = loss_lower;
    }
}

#[test]
fn generalized_core_graphs_meet_lemma_4_6_assertions() {
    for (delta_star, beta_star) in [(32usize, 2.0f64), (64, 4.0), (64, 0.5), (128, 8.0)] {
        let g = match GeneralizedCoreGraph::from_targets(delta_star, beta_star) {
            Ok(g) => g,
            Err(e) => panic!("({delta_star}, {beta_star}): construction failed: {e}"),
        };
        // assertion 1 (sizes): |N*| = realized_beta·|S*| with realized ≥ β*.
        assert!(
            g.graph.num_right() as f64 + 1e-9 >= beta_star * g.graph.num_left() as f64,
            "({delta_star}, {beta_star}): |N*| too small"
        );
        // assertions 2 & 3 on random subsets
        let mut rng = wx_graph::random::rng_from_seed(5);
        let mut subsets = vec![VertexSet::full(g.graph.num_left())];
        for _ in 0..30 {
            use rand::Rng;
            let k = rng.gen_range(1..=g.graph.num_left());
            subsets.push(wx_graph::random::random_subset_of_size(
                &mut rng,
                g.graph.num_left(),
                k,
            ));
        }
        g.verify(&subsets)
            .unwrap_or_else(|e| panic!("({delta_star}, {beta_star}): {e}"));
        // the structural coverage bound implies the Lemma 4.6(3) fraction
        let frac = g.unique_coverage_upper_bound() as f64 / g.graph.num_right() as f64;
        let lemma_bound = 4.0
            / (wx_spokesman::bounds::min_degree_ratio(g.target_delta, g.target_beta))
                .log2()
                .max(1.0);
        assert!(
            frac <= lemma_bound + 1e-9,
            "({delta_star}, {beta_star}): structural fraction {frac} exceeds Lemma 4.6 bound {lemma_bound}"
        );
    }
}

#[test]
fn worst_case_expander_keeps_ordinary_but_loses_wireless_expansion() {
    let base = wx_constructions::families::random_regular_graph(1024, 64, 3).unwrap();
    let beta = 1.0;
    let wce = WorstCaseExpander::plug(&base, beta, 0.3).unwrap();

    // Claim 4.9 (sampled): sets from the base graph keep expansion ≥ (1−ε)β…
    let mut rng = wx_graph::random::rng_from_seed(2);
    for _ in 0..10 {
        use rand::Rng;
        let k = rng.gen_range(4..200);
        let base_set = wx_graph::random::random_subset_of_size(&mut rng, wce.base_n, k);
        let set = VertexSet::from_iter(wce.graph.num_vertices(), base_set.iter());
        let exp = wx_graph::neighborhood::expansion_of_set(&wce.graph, &set);
        assert!(
            exp + 1e-9 >= wce.beta_tilde(),
            "random base set of size {k} has expansion {exp} < β̃ = {}",
            wce.beta_tilde()
        );
    }

    // …and the planted set S* keeps ordinary expansion ≥ β̃ too…
    let planted_exp = wx_graph::neighborhood::expansion_of_set(&wce.graph, &wce.s_star);
    assert!(planted_exp + 1e-9 >= wce.beta_tilde());

    // …but its wireless expansion is pinned under the Corollary 4.11 bound.
    let (lower, upper) = wce.planted_set_wireless_bounds(9);
    assert!(lower <= upper + 1e-9);
    assert!(upper <= wce.wireless_upper_bound() + 1e-9);
    // and the loss on the planted set is real: ordinary expansion exceeds the
    // structural wireless cap.
    assert!(
        planted_exp > upper,
        "planted set: ordinary {planted_exp} does not exceed wireless cap {upper}"
    );
}
