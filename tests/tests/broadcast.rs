//! Radio-broadcast integration tests: protocol correctness across topologies
//! and the Section-5 lower-bound shape.

use wx_constructions::BroadcastChain;
use wx_radio::lower_bound::ChainExperiment;
use wx_radio::protocols::decay::DecayProtocol;
use wx_radio::protocols::naive::NaiveFlooding;
use wx_radio::protocols::round_robin::RoundRobin;
use wx_radio::protocols::spokesman::SpokesmanBroadcast;
use wx_radio::{BroadcastProtocol, RadioSimulator, SimulatorConfig};

fn run(
    graph: &wx_graph::Graph,
    source: usize,
    proto: &mut dyn BroadcastProtocol,
    seed: u64,
) -> wx_radio::BroadcastOutcome {
    RadioSimulator::new(graph, source, SimulatorConfig::default()).run(proto, seed)
}

#[test]
fn collision_free_protocols_complete_everywhere() {
    let graphs: Vec<(&str, wx_graph::Graph)> = vec![
        (
            "expander",
            wx_constructions::families::random_regular_graph(96, 4, 1).unwrap(),
        ),
        (
            "grid",
            wx_constructions::families::grid_graph(8, 8).unwrap(),
        ),
        (
            "c-plus",
            wx_constructions::families::complete_plus_graph(10)
                .unwrap()
                .0,
        ),
        ("chain", BroadcastChain::new(8, 2, 1).unwrap().graph),
    ];
    for (name, g) in graphs {
        for (pname, mut proto) in [
            (
                "round-robin",
                Box::new(RoundRobin::default()) as Box<dyn BroadcastProtocol>,
            ),
            ("decay", Box::new(DecayProtocol::default())),
            ("spokesman", Box::new(SpokesmanBroadcast::default())),
        ] {
            let outcome = run(&g, 0, proto.as_mut(), 3);
            assert!(
                outcome.completed_at.is_some(),
                "{pname} failed to complete on {name}"
            );
            // monotone coverage curve
            assert!(outcome.informed_per_round.windows(2).all(|w| w[1] >= w[0]));
        }
    }
}

#[test]
fn informed_counts_never_exceed_reachable() {
    let g = wx_constructions::families::random_regular_graph(64, 4, 9).unwrap();
    let sim = RadioSimulator::new(&g, 0, SimulatorConfig::default());
    for seed in 0..3 {
        let o = sim.run(&mut DecayProtocol::default(), seed);
        assert!(o.informed_per_round.iter().all(|&c| c <= o.reachable));
        // first-informed rounds are consistent with the coverage curve
        let informed_from_rounds = o
            .first_informed_round
            .iter()
            .filter(|r| r.is_some())
            .count();
        assert_eq!(informed_from_rounds, *o.informed_per_round.last().unwrap());
    }
}

#[test]
fn corollary_5_1_per_round_coverage_on_the_first_stage() {
    // No transmission pattern informs more than 2s vertices of stage-1 N per
    // round; therefore reaching a (2i/log 2s) fraction of N needs ≥ 1 + i
    // rounds. We verify the per-round increments directly.
    let s = 32usize;
    let chain = BroadcastChain::new(s, 1, 5).unwrap();
    let sim = RadioSimulator::new(&chain.graph, chain.root, SimulatorConfig::default());
    for (label, mut proto) in [
        (
            "spokesman",
            Box::new(SpokesmanBroadcast::thorough()) as Box<dyn BroadcastProtocol>,
        ),
        ("decay", Box::new(DecayProtocol::default())),
        ("naive", Box::new(NaiveFlooding)),
    ] {
        let outcome = sim.run(proto.as_mut(), 7);
        for w in outcome.informed_per_round.windows(2) {
            let increment = w[1] - w[0];
            // per round at most: the whole S side (s, informed by the root)
            // plus 2s uniquely-coverable N vertices.
            assert!(
                increment <= 3 * s,
                "{label}: informed {increment} new vertices in one round, above the 2s cap (+s for the S side)"
            );
        }
    }
}

#[test]
fn broadcast_time_on_chain_grows_with_number_of_stages() {
    let cfg = SimulatorConfig {
        max_rounds: 50_000,
        stop_when_complete: true,
    };
    let mut prev = 0usize;
    for stages in [1usize, 3, 6] {
        let chain = BroadcastChain::new(16, stages, 11).unwrap();
        let exp = ChainExperiment::new(&chain, cfg.clone());
        let run = exp.run(&mut SpokesmanBroadcast::default(), 3);
        let completed = run.completed_at.expect("spokesman completes");
        assert!(
            completed > prev,
            "{stages} stages completed in {completed} rounds, not more than {prev}"
        );
        prev = completed;
    }
}

#[test]
fn broadcast_time_on_chain_grows_with_log_of_stage_size() {
    // Fixing the number of stages and growing s (so growing n/D), the total
    // broadcast time should grow — the per-hop cost is Ω(log 2s).
    let cfg = SimulatorConfig {
        max_rounds: 50_000,
        stop_when_complete: true,
    };
    let stages = 3usize;
    let mut times = Vec::new();
    for s in [8usize, 64, 256] {
        let chain = BroadcastChain::new(s, stages, 13).unwrap();
        let exp = ChainExperiment::new(&chain, cfg.clone());
        // decay is the protocol the lower bound is usually stated against;
        // one run is noisy, so compare medians over several seeds
        let mut completions: Vec<usize> = (0..7u64)
            .map(|seed| {
                exp.run(&mut DecayProtocol::default(), 5 + seed)
                    .completed_at
                    .expect("decay completes")
            })
            .collect();
        completions.sort_unstable();
        times.push(completions[completions.len() / 2] as f64);
    }
    assert!(
        times[1] > times[0] && times[2] > times[1],
        "median broadcast times {times:?} do not grow with s"
    );
}

#[test]
fn relay_gaps_reflect_the_log_factor() {
    // Per-stage gaps on a larger-s chain should exceed those on a smaller-s
    // chain (same protocol, same seeds), matching Corollary 5.1.
    let cfg = SimulatorConfig::default();
    let small = BroadcastChain::new(8, 4, 17).unwrap();
    let large = BroadcastChain::new(128, 4, 17).unwrap();
    let small_gap = ChainExperiment::new(&small, cfg.clone())
        .run(&mut DecayProtocol::default(), 23)
        .mean_gap()
        .unwrap();
    let large_gap = ChainExperiment::new(&large, cfg)
        .run(&mut DecayProtocol::default(), 23)
        .mean_gap()
        .unwrap();
    assert!(
        large_gap > small_gap,
        "mean relay gap did not grow with s: {small_gap} vs {large_gap}"
    );
}
