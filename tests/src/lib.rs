//! Shared helpers for the cross-crate integration tests.
//!
//! The actual tests live in this package's `tests/` directory; this tiny
//! library only hosts instance generators reused by several test files.

use wx_graph::random::rng_from_seed;
use wx_graph::{BipartiteGraph, Graph};

/// A small battery of named graphs covering the paper's main regimes:
/// expanders, low-arboricity graphs and the pathological constructions.
pub fn small_test_graphs() -> Vec<(&'static str, Graph)> {
    vec![
        (
            "petersen",
            Graph::from_edges(
                10,
                [
                    (0, 1),
                    (1, 2),
                    (2, 3),
                    (3, 4),
                    (4, 0),
                    (0, 5),
                    (1, 6),
                    (2, 7),
                    (3, 8),
                    (4, 9),
                    (5, 7),
                    (7, 9),
                    (9, 6),
                    (6, 8),
                    (8, 5),
                ],
            )
            .unwrap(),
        ),
        (
            "c-plus-7",
            wx_constructions::families::complete_plus_graph(7)
                .unwrap()
                .0,
        ),
        (
            "cycle-12",
            Graph::from_edges(12, (0..12).map(|i| (i, (i + 1) % 12))).unwrap(),
        ),
        (
            "grid-3x4",
            wx_constructions::families::grid_graph(3, 4).unwrap(),
        ),
        (
            "hypercube-3",
            wx_constructions::families::hypercube_graph(3).unwrap(),
        ),
        (
            "tree-2-3",
            wx_constructions::families::complete_k_ary_tree(2, 3).unwrap(),
        ),
    ]
}

/// A random Erdős–Rényi-style graph for property tests (connectedness not
/// guaranteed).
pub fn random_graph(n: usize, p: f64, seed: u64) -> Graph {
    use rand::Rng;
    let mut rng = rng_from_seed(seed);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, edges).expect("valid edges")
}

/// A random bipartite instance for spokesman property tests.
pub fn random_bipartite(s: usize, n: usize, p: f64, seed: u64) -> BipartiteGraph {
    use rand::Rng;
    let mut rng = rng_from_seed(seed);
    let mut edges = Vec::new();
    for u in 0..s {
        for w in 0..n {
            if rng.gen_bool(p) {
                edges.push((u, w));
            }
        }
    }
    BipartiteGraph::from_edges(s, n, edges).expect("valid edges")
}
